"""The discrete-event simulation engine.

A :class:`SimulationEngine` owns a virtual clock and an event queue and runs
events in deterministic timestamp order.  Subsystems (schedulers, network
model, failure injectors, elasticity controllers) schedule callbacks with
:meth:`at` / :meth:`after`; the engine dispatches them until the queue drains
or an explicit stop condition fires.

The engine is deliberately minimal — no coroutines, no implicit processes —
because the callers in this codebase (the simulated executor, the agents
substrate) are themselves state machines that only need "call me at time t".
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simulation.clock import SimClock
from repro.simulation.events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised for unrecoverable simulation conditions (e.g. runaway loops)."""


class SimulationEngine:
    """Deterministic discrete-event loop.

    Attributes:
        clock: the virtual clock, advanced as events dispatch.
        max_events: safety valve; exceeding it raises :class:`SimulationError`
            so an accidentally self-rescheduling event cannot hang a test run.
    """

    #: Engines advertising shard support set this True; callers that want to
    #: route events by zone check the flag once instead of probing kwargs.
    is_sharded = False

    def __init__(self, start: float = 0.0, max_events: int = 50_000_000) -> None:
        self.clock = SimClock(start)
        self.queue = EventQueue()
        self.max_events = max_events
        self._dispatched = 0
        self._lifetime_dispatched = 0
        self._stopped = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    @property
    def dispatched_events(self) -> int:
        """Events dispatched by the current (or most recent) :meth:`run`.

        Reset at the start of every ``run()`` call, matching ``max_events``:
        the safety valve bounds one run, so a caller alternating ``run(until=)``
        phases never trips it on cumulative volume.  Use
        :attr:`lifetime_dispatched` for totals across runs.
        """
        return self._dispatched

    @property
    def lifetime_dispatched(self) -> int:
        """Events dispatched over the engine's whole lifetime."""
        return self._lifetime_dispatched

    def at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
        shard: Optional[str] = None,
    ) -> Event:
        """Schedule ``action`` at absolute virtual ``time``.

        ``shard`` is accepted for API compatibility with
        :class:`~repro.simulation.sharded.ShardedSimulationEngine` and
        ignored: the single-queue engine has one timeline.
        """
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time:.6f}, "
                f"which is before now ({self.clock.now:.6f})"
            )
        return self.queue.push(time, action, priority=priority, label=label)

    def after(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
        shard: Optional[str] = None,
    ) -> Event:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r} for event {label!r}")
        return self.at(self.clock.now + delay, action, priority=priority, label=label)

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def step(self) -> bool:
        """Dispatch a single event.  Returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self._dispatched += 1
        self._lifetime_dispatched += 1
        if self._dispatched > self.max_events:
            raise SimulationError(
                f"dispatched more than {self.max_events} events; "
                "likely a self-rescheduling loop"
            )
        event.action()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains, :meth:`stop` is called, or ``until``.

        Returns the final virtual time.  With a horizon, the clock always
        lands exactly on ``until`` unless :meth:`stop` cut the run short —
        including when the queue drains early or holds only cancelled
        events, so periodic callers can rely on ``now == until`` to resume.
        """
        self._stopped = False
        self._dispatched = 0
        if until is None:
            # Hot path: no horizon to honor, so step() alone decides when to
            # stop — the per-event peek would duplicate its cancelled-event
            # filtering for no benefit.
            while not self._stopped and self.step():
                pass
            return self.clock.now
        if until < self.clock.now:
            raise SimulationError(
                f"cannot run until {until:.6f}, before now ({self.clock.now:.6f})"
            )
        while not self._stopped:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > until:
                break
            self.step()
        if not self._stopped and self.clock.now < until:
            self.clock.advance_to(until)
        return self.clock.now
