"""Event and event-queue primitives for the DES kernel.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering total and deterministic: two events scheduled for the same
instant with the same priority are dispatched in scheduling order, which is
what makes simulated schedules reproducible run-to-run.

The heap holds ``(time, priority, sequence, event)`` tuples rather than the
events themselves: every sift comparison then resolves on the first three
fields in C, instead of re-entering a Python ``__lt__`` — at millions of
heap operations per run the comparator is a measurable share of the whole
simulation loop.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A single scheduled event.

    Attributes:
        time: virtual timestamp at which the event fires.
        priority: tie-breaker for events at the same instant (lower first).
        sequence: monotonically increasing scheduling order (assigned by the
            queue); makes ordering total.
        action: zero-argument callable executed when the event fires.
        label: human-readable tag used in traces and error messages.
        cancelled: cancelled events are skipped when popped.
    """

    time: float
    priority: int
    sequence: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue drops it instead of firing it."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self, counter: Optional[itertools.count] = None) -> None:
        self._heap: list = []
        # Sharded engines hand every shard queue the same counter so that
        # sequence numbers are assigned in global scheduling order — the
        # tie-break then matches the single-queue engine exactly.
        self._counter = counter if counter is not None else itertools.count()

    def __len__(self) -> int:
        """Number of live (non-cancelled) events; O(n), diagnostics only."""
        return sum(1 for entry in self._heap if not entry[3].cancelled)

    def __bool__(self) -> bool:
        return any(not entry[3].cancelled for entry in self._heap)

    def push(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at virtual ``time`` and return the Event.

        The returned handle can be cancelled with :meth:`Event.cancel`.
        """
        sequence = next(self._counter)
        event = Event(
            time=time,
            priority=priority,
            sequence=sequence,
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, (time, priority, sequence, event))
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event without removing it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if heap:
            return heap[0][0]
        return None

    def peek_key(self) -> Optional[tuple]:
        """``(time, priority, sequence)`` of the next live event, or None.

        The key is totally ordered across queues sharing a sequence counter,
        which is how the sharded engine merges shard heads in exactly the
        single-queue dispatch order.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if heap:
            entry = heap[0]
            return (entry[0], entry[1], entry[2])
        return None
