"""Seeded randomness for simulations and workload generators.

All stochastic behaviour in the simulator flows through one of these streams
so that every experiment is reproducible from its seed.  Independent
subsystems derive independent child streams (``fork``) to keep their draws
decoupled: adding a draw in the network model must not change the durations a
workload generator produces.
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRandom:
    """A named, seeded random stream with distribution helpers."""

    def __init__(self, seed: int = 0, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._rng = random.Random(seed)

    def fork(self, name: str) -> "DeterministicRandom":
        """Derive an independent child stream keyed by ``name``.

        The child's seed depends only on the parent seed and the name, never
        on how many draws the parent has made.  The derivation must be
        stable across interpreter processes — the built-in ``hash`` is
        salted per process for strings, which would make "the same seed"
        produce different workloads run to run — so it uses CRC32 over a
        canonical key instead.
        """
        child_seed = zlib.crc32(f"{self.seed}:{name}".encode("utf-8")) & 0x7FFFFFFF
        return DeterministicRandom(seed=child_seed, name=f"{self.name}/{name}")

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, items: Sequence[T]) -> T:
        return self._rng.choice(items)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def exponential(self, mean: float) -> float:
        """Exponentially distributed sample with the given mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        return self._rng.expovariate(1.0 / mean)

    def lognormal(self, median: float, sigma: float) -> float:
        """Log-normal sample, parameterized by its median (heavy-tailed durations)."""
        if median <= 0:
            raise ValueError(f"median must be positive, got {median!r}")
        import math

        return self._rng.lognormvariate(math.log(median), sigma)

    def pareto(self, shape: float, scale: float = 1.0) -> float:
        """Pareto sample: heavy-tailed, minimum value = scale."""
        if shape <= 0:
            raise ValueError(f"shape must be positive, got {shape!r}")
        return scale * (self._rng.paretovariate(shape))

    def __repr__(self) -> str:
        return f"DeterministicRandom(seed={self.seed}, name={self.name!r})"
