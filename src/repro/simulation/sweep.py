"""Multiprocess scenario-sweep driver for independent simulation runs.

Experiment campaigns (E1's scaling sweeps, the scheduler ablation, seed
sensitivity studies) are embarrassingly parallel: every scenario is an
independent simulation with its own seed.  The engine-level sharding in
:mod:`repro.simulation.sharded` parallelizes *within* one run; this module
is the run-level layer above it — it fans a list of scenario dicts across
worker processes and folds the per-run results into one merged document.

Determinism is the load-bearing property:

* every scenario's seed is *derived*, never drawn — the sweep's base seed
  is forked through :meth:`DeterministicRandom.fork` keyed by the
  scenario's canonical identity, so the seed depends only on (base seed,
  scenario content), not on list position, worker count, or which process
  happened to run it (CRC32 derivation is process-stable by design);
* the merged document contains only deterministic fields (scenario, key,
  seed, the runner's result) in scenario order — wall-clock and CPU timing
  live in a separate, explicitly non-deterministic stats block — so the
  same scenarios at any ``workers=N`` serialize to byte-identical JSON
  (asserted in ``tests/test_sweep_driver.py``).

Workers are forked (Linux); platforms without the ``fork`` start method,
and ``workers <= 1``, fall back to inline execution — same results, same
merged bytes, just sequential.  Runners must be module-level callables
``runner(scenario, seed) -> dict`` so child processes can resolve them by
reference.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.simulation.random import DeterministicRandom

#: Fork namespace separating sweep seeds from every other consumer of the
#: base seed (workload generators fork their own names off the same root).
_SWEEP_STREAM = "sweep"

Runner = Callable[[Dict[str, Any], int], Dict[str, Any]]


def scenario_key(scenario: Dict[str, Any]) -> str:
    """Canonical identity of a scenario.

    An explicit ``key`` field wins; otherwise the canonical JSON of the
    scenario (sorted keys, no whitespace) — two dicts with the same items
    in any insertion order are the same scenario and get the same seed.
    """
    explicit = scenario.get("key")
    if explicit is not None:
        return str(explicit)
    return json.dumps(scenario, sort_keys=True, separators=(",", ":"))


def derive_seed(base_seed: int, key: str) -> int:
    """Per-scenario seed: the base seed forked through the sweep stream."""
    return DeterministicRandom(seed=base_seed, name="sweep-root").fork(
        f"{_SWEEP_STREAM}:{key}"
    ).seed


@dataclass
class SweepStats:
    """Non-deterministic execution metrics for one sweep invocation.

    Kept strictly outside the merged document: everything here varies with
    machine load, worker count, and scheduling, and must never leak into
    the bytes the determinism guarantee covers.
    """

    workers: int
    cpus: int
    wall_seconds: float
    total_events: int
    total_cpu_seconds: float
    #: CPU seconds scoped by the runners to their simulation loops (equals
    #: ``total_cpu_seconds`` when runners report no scoped measurement).
    total_sim_cpu_seconds: float = 0.0
    per_run: List[Dict[str, float]] = field(default_factory=list)

    @property
    def events_per_sec_wall(self) -> float:
        """Aggregate throughput against sweep wall time (honest on any box)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_events / self.wall_seconds

    @property
    def events_per_sec_per_cpu(self) -> float:
        """Mean per-process throughput on a CPU-seconds basis."""
        cpu = self.total_sim_cpu_seconds or self.total_cpu_seconds
        if cpu <= 0:
            return 0.0
        return self.total_events / cpu

    @property
    def max_peak_rss_kb(self) -> float:
        """Largest per-worker peak RSS observed across the sweep's runs.

        With forked workers each run reports its own process's high-water
        mark, so this is the per-lane memory bill a parallel fleet pays —
        the figure benchmark documents record next to throughput.
        """
        return max(
            (float(run.get("peak_rss_kb", 0.0)) for run in self.per_run),
            default=0.0,
        )

    def _sum_per_run(self, key: str) -> float:
        return sum(float(run.get(key, 0.0)) for run in self.per_run)

    @property
    def total_cache_hits(self) -> float:
        """Content-cache hits (deduped tasks) summed across the fleet.

        Runners report per-worker cache counters through the ``_stats``
        channel (``cache_hits`` / ``cache_skipped`` / ``cache_evictions``);
        runs without a cache contribute zero.
        """
        return self._sum_per_run("cache_hits")

    @property
    def total_cache_skipped(self) -> float:
        """Invocations that opted out of content addressing, fleet-wide."""
        return self._sum_per_run("cache_skipped")

    @property
    def total_cache_evictions(self) -> float:
        """Cache evictions across the fleet (budget pressure indicator)."""
        return self._sum_per_run("cache_evictions")

    @property
    def total_stream_events(self) -> float:
        """Stream elements ingested fleet-wide (hybrid_stream scenarios).

        Streaming runners report per-scenario counters through the
        ``_stats`` channel (``stream_events`` / ``stream_dropped`` /
        ``stream_spilled`` / ``windows_closed``); batch-only runs
        contribute zero.
        """
        return self._sum_per_run("stream_events")

    @property
    def total_stream_dropped(self) -> float:
        """Elements discarded by backpressure drop policies, fleet-wide."""
        return self._sum_per_run("stream_dropped")

    @property
    def total_stream_spilled(self) -> float:
        """Spill writes by backpressure spill policies, fleet-wide."""
        return self._sum_per_run("stream_spilled")

    @property
    def total_windows_closed(self) -> float:
        """Tumbling windows closed (tasks lowered) across the fleet."""
        return self._sum_per_run("windows_closed")

    def aggregate_events_per_sec(self, basis: str = "cpu") -> float:
        """Aggregate events/sec of the sweep fleet.

        ``basis="wall"`` divides total events by sweep wall time — the
        throughput actually observed, which tops out at one worker's rate
        times the *physical* core count.  ``basis="cpu"`` is the per-run
        CPU-seconds rate times the concurrency the sweep was asked for
        (bounded by the number of runs): the rate the same fleet sustains
        when each worker owns a core.  Both are reported in benchmark
        documents with the basis spelled out.
        """
        if basis == "wall":
            return self.events_per_sec_wall
        if basis == "cpu":
            concurrency = max(1, min(self.workers, len(self.per_run)))
            return self.events_per_sec_per_cpu * concurrency
        raise ValueError(f"unknown basis {basis!r} (wall or cpu)")


@dataclass
class SweepResult:
    """Merged sweep outcome: deterministic document + timing stats."""

    merged: Dict[str, Any]
    stats: SweepStats

    def merged_json(self) -> str:
        """Canonical serialization of the deterministic document.

        Byte-identical across worker counts, processes, and platforms for
        the same (scenarios, runner, base_seed).
        """
        return json.dumps(self.merged, sort_keys=True, indent=2) + "\n"

    def write_merged(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.merged_json())


def _execute_one(
    task: Tuple[int, Dict[str, Any], str, int, Runner]
) -> Tuple[int, Dict[str, Any], Dict[str, float]]:
    """Run one scenario (in a worker or inline) and time it both ways."""
    index, scenario, key, seed, runner = task
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    result = runner(scenario, seed)
    timing = {
        "wall_seconds": time.perf_counter() - wall_start,
        "cpu_seconds": time.process_time() - cpu_start,
        "events": float(result.get("events", 0) or 0),
        "peak_rss_kb": _peak_rss_kb(),
    }
    # Reserved channel for runner-measured timing: the ``_stats`` dict is
    # stripped here so it can never leak into the deterministic merged
    # document, and folded into this run's stats entry.  A runner that
    # scopes ``cpu_seconds`` to its simulation loop proper (excluding
    # scenario construction) makes the cpu-basis throughput a statement
    # about the engine rather than about workload build cost; the outer
    # measurements above are always recorded alongside it.
    runner_stats = result.pop("_stats", None)
    if runner_stats:
        timing["sim_cpu_seconds"] = float(
            runner_stats.get("cpu_seconds", timing["cpu_seconds"])
        )
        for stat_key, value in runner_stats.items():
            timing.setdefault(stat_key, value)
    else:
        timing["sim_cpu_seconds"] = timing["cpu_seconds"]
    return index, result, timing


def _peak_rss_kb() -> float:
    """This process's peak resident set size in KB (0.0 where unavailable).

    Measured in the process that ran the scenario — a forked worker under
    ``workers > 1`` / ``fresh_process``, the driver itself inline — so the
    figure is the memory cost of the run's own working set (plus the warmed
    parent image it forked from), not the whole fleet's.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0.0
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The fork context, or None where unsupported (then we run inline).

    Fork (not spawn) keeps worker startup at milliseconds and — because
    children inherit the parent's loaded modules — lets benchmark modules
    pass their own module-level runners without being installed packages.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def run_sweep(
    scenarios: Sequence[Dict[str, Any]],
    runner: Runner,
    workers: int = 1,
    base_seed: int = 42,
    fresh_process: bool = False,
) -> SweepResult:
    """Run every scenario through ``runner`` and merge the results.

    Args:
        scenarios: parameter dicts; an optional ``key`` field names the
            scenario (otherwise its canonical JSON does).  Duplicate keys
            are rejected — they would silently share a seed.
        runner: module-level ``callable(scenario, seed) -> dict``.  The
            returned dict must itself be deterministic (no timestamps, no
            wall-clock measurements); an optional ``events`` field feeds
            the throughput stats, and an optional ``_stats`` sub-dict of
            runner-scoped timing is stripped into the stats block before
            merging (see :func:`_execute_one`).
        workers: worker processes to fan across.  ``<= 1`` (or platforms
            without fork) runs inline in this process.
        base_seed: root of the per-scenario seed derivation.
        fresh_process: run every scenario in a brand-new fork of this
            process (``maxtasksperchild=1``), even at ``workers=1``.  Long
            benchmark campaigns want this: each run then starts from the
            identical warmed parent image instead of inheriting the
            previous run's allocator fragmentation, which otherwise skews
            per-run timing by 2-3x late in a sweep.  Results are unchanged
            either way — this only affects the timing stats.

    Returns a :class:`SweepResult` whose ``merged`` document lists runs in
    scenario order regardless of completion order.
    """
    keys = [scenario_key(s) for s in scenarios]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate scenario keys: {dupes[:3]}")
    tasks = [
        (index, dict(scenario), key, derive_seed(base_seed, key), runner)
        for index, (scenario, key) in enumerate(zip(scenarios, keys))
    ]
    context = _fork_context() if (workers > 1 or fresh_process) else None
    wall_start = time.perf_counter()
    outcomes: List[Optional[Tuple[int, Dict[str, Any], Dict[str, float]]]]
    if context is None or not tasks:
        outcomes = [_execute_one(task) for task in tasks]
        effective_workers = 1
    else:
        effective_workers = max(1, min(workers, len(tasks)))
        with context.Pool(
            processes=effective_workers,
            maxtasksperchild=1 if fresh_process else None,
        ) as pool:
            # unordered: results are re-seated by index below, so the merge
            # order cannot depend on completion order.
            outcomes = list(pool.imap_unordered(_execute_one, tasks))
    wall_seconds = time.perf_counter() - wall_start
    outcomes.sort(key=lambda item: item[0])
    runs = []
    per_run_stats = []
    total_events = 0
    total_cpu = 0.0
    total_sim_cpu = 0.0
    for (index, result, timing), key, task in zip(outcomes, keys, tasks):
        runs.append(
            {
                "key": key,
                "seed": task[3],
                "scenario": task[1],
                "result": result,
            }
        )
        per_run_stats.append(dict(timing, key=key))
        total_events += int(timing["events"])
        total_cpu += timing["cpu_seconds"]
        total_sim_cpu += timing["sim_cpu_seconds"]
    merged = {
        "base_seed": base_seed,
        "runs": runs,
    }
    stats = SweepStats(
        workers=effective_workers,
        cpus=os.cpu_count() or 1,
        wall_seconds=wall_seconds,
        total_events=total_events,
        total_cpu_seconds=total_cpu,
        total_sim_cpu_seconds=total_sim_cpu,
        per_run=per_run_stats,
    )
    return SweepResult(merged=merged, stats=stats)
