"""Discrete-event simulation (DES) kernel.

This package is the substitute substrate for the real testbeds used by the
paper (MareNostrum, fog devices, clouds): a deterministic, seeded event loop
that advances a virtual clock through task starts/ends, data transfers, node
failures and elasticity actions.  See DESIGN.md (S6).
"""

from repro.simulation.clock import SimClock
from repro.simulation.events import Event, EventQueue
from repro.simulation.engine import SimulationEngine, SimulationError
from repro.simulation.random import DeterministicRandom
from repro.simulation.sharded import CONTROL_SHARD, ShardedSimulationEngine
from repro.simulation.parallel import (
    ChannelMessage,
    ParallelShardedSimulationEngine,
    ShardApi,
    run_programs_sharded,
)

__all__ = [
    "SimClock",
    "Event",
    "EventQueue",
    "SimulationEngine",
    "SimulationError",
    "DeterministicRandom",
    "ShardedSimulationEngine",
    "CONTROL_SHARD",
    "ChannelMessage",
    "ParallelShardedSimulationEngine",
    "ShardApi",
    "run_programs_sharded",
]
