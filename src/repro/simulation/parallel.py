"""Parallel shard execution: zone shards on real OS lanes.

:mod:`repro.simulation.sharded` proved the conservative-lookahead contract —
each zone may independently drain the window ``[GVT, GVT + lookahead)``
because no cross-zone effect can undercut the inter-zone network latency —
but still dispatches every shard on one OS thread.  This module puts the
contract to work: each *lane* (a forked worker process, or an in-process
object where fork is unavailable) owns one or more zone shards outright —
their clocks, event queues, and all node-local state — and cross-shard
pushes are buffered during a window and exchanged only at window barriers,
as pickled :class:`ChannelMessage` records over OS pipes.

The execution model is programs-per-zone rather than one global callable:
the caller hands :class:`ParallelShardedSimulationEngine` a
``{zone: factory}`` mapping where each ``factory(api)`` receives a
:class:`ShardApi` — a zone-local engine facade with the familiar
``at``/``after``/``now`` surface plus an explicit :meth:`ShardApi.send` for
cross-zone effects.  ``send`` enforces the same latency floor as
:meth:`ShardedSimulationEngine.at` (verbatim: ``time >= now + effective
latency - _EPS``, raising :class:`SimulationError` on violation), which is
what makes the safety argument — and the per-zone stream equivalence tests —
carry over unchanged.

Why a barrier for *every* cross-shard message, even between shards that
happen to share a lane: the exchange point is part of the ordering contract.
Messages are delivered sorted by ``(time, priority, src_index, send_seq)``
at the window boundary regardless of transport, so the fork and inline
transports are byte-identical by construction — the inline mode is not a
degraded fallback but the same coordinator loop over in-process lanes, and
payloads take the identical pickle round-trip either way (a handler always
receives a *copy*, never the sender's object).

Determinism boundary: lane placement (which zones share a process) affects
wall-clock only, never results — zone state is never shared and message
exchange is transport-independent.  Worker counts, core counts, and fork
availability therefore cannot change a simulation's outcome.

:func:`run_programs_sharded` runs the same ``{zone: factory}`` programs on
the sequential :class:`ShardedSimulationEngine` (lookahead mode), giving the
equivalence suites a reference run with the identical API surface.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import time as _time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.infrastructure.network import NetworkTopology
from repro.simulation.engine import SimulationEngine, SimulationError
from repro.simulation.sharded import _EPS, ShardedSimulationEngine
from repro.simulation.sweep import _fork_context

#: ``factory(api) -> result_fn | None``: builds one zone's program against a
#: :class:`ShardApi` and optionally returns a zero-arg callable evaluated at
#: the end of the run to produce the zone's result.
ProgramFactory = Callable[["ShardApi"], Optional[Callable[[], Any]]]


@dataclass
class ChannelMessage:
    """One cross-shard event crossing a window barrier.

    The payload is pickled *at send time* — not at transport time — so the
    sender cannot mutate it afterwards and the inline and fork transports
    deliver bit-identical bytes.  Ordering at the receiving shard is by
    :attr:`sort_key`; ``send_seq`` is per-sender, so the key is total for
    any batch (no two messages share ``(src_index, send_seq)``).
    """

    time: float
    priority: int
    src_zone: str
    src_index: int
    send_seq: int
    dst_zone: str
    payload_bytes: bytes

    @property
    def sort_key(self) -> Tuple[float, int, int, int]:
        return (self.time, self.priority, self.src_index, self.send_seq)

    def payload(self) -> Any:
        """Unpickle a fresh copy of the payload (receivers own their copy)."""
        return pickle.loads(self.payload_bytes)


def check_latency_floor(
    src_zone: str,
    dst_zone: str,
    now: float,
    time: float,
    latency: float,
    label: str = "",
) -> None:
    """The cross-shard causal floor, shared by every engine flavor.

    Identical contract to :meth:`ShardedSimulationEngine.at`: a cross-zone
    effect may not land earlier than ``now + effective latency`` (modulo the
    float-round-off slack ``_EPS``).  Raising here — in both the parallel
    and the sequential reference engines — is what keeps "schedules that
    would break causality" an error instead of a silent corruption.
    """
    floor = now + latency
    if time < floor - _EPS:
        raise SimulationError(
            f"cross-shard event {label!r} from {src_zone!r} "
            f"(now {now:.6f}) to {dst_zone!r} at "
            f"{time:.6f} undercuts the zone latency floor "
            f"({floor:.6f}); conservative windows require every "
            "cross-zone effect to pay the network latency"
        )


class ShardApi:
    """Zone-local engine facade handed to each zone's program factory.

    Implements the :class:`~repro.simulation.engine.SimulationEngine`
    surface a zone-local caller (e.g. :class:`SimulatedExecutor`) needs —
    ``at`` / ``after`` / ``now`` / ``stop`` / ``dispatched_events`` — plus
    the explicit cross-zone channel: :meth:`send` to emit, and
    :meth:`on_message` to receive.  ``is_sharded`` is False on purpose:
    everything a zone program schedules is zone-local by construction, so
    shard-routing callers bind their no-op resolver.
    """

    is_sharded = False

    def __init__(
        self,
        zone: str,
        zone_index: int,
        zones: Tuple[str, ...],
        latency: Dict[Tuple[str, str], float],
        lookahead: float,
        engine: SimulationEngine,
    ) -> None:
        self.zone = zone
        self.zone_index = zone_index
        self._zones = frozenset(zones)
        self._latency = latency
        self._lookahead = lookahead
        self._engine = engine
        self._send_seq = itertools.count()
        self._outbox: List[ChannelMessage] = []
        self._handler: Optional[Callable[[Any], Any]] = None
        self._done = False
        #: ``(now, entry)`` records appended by :meth:`log`; the per-zone
        #: stream the equivalence suites byte-compare.
        self.logs: List[Tuple[float, Any]] = []

    # ------------------------------------------------------- engine surface

    @property
    def now(self) -> float:
        return self._engine.now

    @property
    def dispatched_events(self) -> int:
        return self._engine.dispatched_events

    def _check_shard(self, shard: Optional[str]) -> None:
        if shard is not None and shard != self.zone:
            raise SimulationError(
                f"zone program {self.zone!r} cannot schedule directly on "
                f"shard {shard!r}; cross-zone effects go through send()"
            )

    def at(self, time, action, priority=0, label="", shard=None):
        """Schedule a zone-local event (same contract as the engines)."""
        self._check_shard(shard)
        return self._engine.at(time, action, priority=priority, label=label)

    def after(self, delay, action, priority=0, label="", shard=None):
        self._check_shard(shard)
        return self._engine.after(delay, action, priority=priority, label=label)

    def stop(self) -> None:
        """Mark this zone's program done.

        Informational in every engine flavor: runs end at quiescence (or the
        horizon), never by one zone halting the others — a global cut would
        make results depend on cross-zone dispatch interleaving, which the
        lookahead contract deliberately leaves unordered.
        """
        self._done = True

    @property
    def done(self) -> bool:
        return self._done

    # ------------------------------------------------------------- channel

    def latency_to(self, dst_zone: str) -> float:
        """Effective latency to ``dst_zone`` (the send floor for it)."""
        lat = self._latency.get((self.zone, dst_zone))
        if lat is None:
            return self._lookahead
        return lat

    def send(
        self,
        dst_zone: str,
        payload: Any,
        delay: Optional[float] = None,
        time: Optional[float] = None,
        priority: int = 0,
        label: str = "",
    ) -> ChannelMessage:
        """Emit a cross-zone message, delivered at the next window barrier.

        Exactly one of ``delay`` / ``time`` picks the delivery instant
        (``delay`` is relative to :attr:`now`); it must pay the inter-zone
        latency floor or this raises :class:`SimulationError`.  The payload
        is pickled here, immediately — mutating it after send cannot affect
        the delivered copy.
        """
        if dst_zone == self.zone:
            raise SimulationError(
                f"zone {self.zone!r} cannot send() to itself; use at()/after() "
                "for same-zone scheduling"
            )
        if dst_zone not in self._zones:
            raise SimulationError(
                f"send() to unknown zone {dst_zone!r} (zones: "
                f"{sorted(self._zones)})"
            )
        if (delay is None) == (time is None):
            raise SimulationError("send() takes exactly one of delay= or time=")
        when = self.now + delay if time is None else time
        check_latency_floor(
            self.zone, dst_zone, self.now, when, self.latency_to(dst_zone), label
        )
        message = ChannelMessage(
            time=when,
            priority=priority,
            src_zone=self.zone,
            src_index=self.zone_index,
            send_seq=next(self._send_seq),
            dst_zone=dst_zone,
            payload_bytes=pickle.dumps(payload),
        )
        self._outbox.append(message)
        return message

    def on_message(self, handler: Callable[[Any], Any]) -> None:
        """Register the zone's (single) cross-zone message handler."""
        self._handler = handler

    def log(self, entry: Any) -> None:
        """Append ``(now, entry)`` to the zone's deterministic log stream."""
        self.logs.append((self.now, entry))

    # ---------------------------------------------------- coordinator hooks

    def drain_outbox(self) -> List[ChannelMessage]:
        outbox, self._outbox = self._outbox, []
        return outbox

    def deliver(self, message: ChannelMessage) -> None:
        """File a barrier-delivered message onto the zone's local queue.

        Pushed directly (not through ``at``): like the sequential sharded
        engine, a barrier delivery lands in the queue unconditionally and
        the dispatch-time clock advance is the causality check of record.
        """
        if self._handler is None:
            raise SimulationError(
                f"zone {self.zone!r} received a message from "
                f"{message.src_zone!r} but registered no on_message handler"
            )
        handler = self._handler
        payload_bytes = message.payload_bytes
        self._engine.queue.push(
            message.time,
            lambda: handler(pickle.loads(payload_bytes)),
            priority=message.priority,
            label=f"channel:{message.src_zone}",
        )


class _LaneShard:
    """One zone's full state inside a lane: api + engine + result hook."""

    __slots__ = ("zone", "api", "engine", "result_fn")

    def __init__(
        self,
        zone: str,
        zone_index: int,
        zones: Tuple[str, ...],
        latency: Dict[Tuple[str, str], float],
        lookahead: float,
        max_events: int,
    ) -> None:
        self.zone = zone
        self.engine = SimulationEngine(max_events=max_events)
        self.api = ShardApi(zone, zone_index, zones, latency, lookahead, self.engine)
        self.result_fn: Optional[Callable[[], Any]] = None

    def setup(self, factory: ProgramFactory) -> None:
        self.result_fn = factory(self.api)

    def next_time(self) -> Optional[float]:
        return self.engine.queue.peek_time()

    def run_window(self, window_end: float, until: Optional[float]) -> None:
        """Drain every local event strictly inside ``[clock, window_end)``."""
        engine = self.engine
        queue = engine.queue
        while True:
            next_time = queue.peek_time()
            if (
                next_time is None
                or next_time >= window_end
                or (until is not None and next_time > until)
            ):
                break
            engine.step()

    def finalize(self, until: Optional[float]) -> Dict[str, Any]:
        if until is not None and self.engine.clock.now < until:
            self.engine.clock.advance_to(until)
        result = self.result_fn() if self.result_fn is not None else None
        return {
            "result": result,
            "logs": list(self.api.logs),
            "now": self.engine.now,
            "dispatched": self.engine.dispatched_events,
            "done": self.api.done,
        }


class _InlineLane:
    """A set of shards driven in-process; the fork worker wraps this too."""

    def __init__(
        self,
        index: int,
        zones: List[Tuple[str, int]],
        programs: Dict[str, ProgramFactory],
        all_zones: Tuple[str, ...],
        latency: Dict[Tuple[str, str], float],
        lookahead: float,
        max_events: int,
    ) -> None:
        self.index = index
        self._programs = programs
        self.shards = [
            _LaneShard(zone, zone_index, all_zones, latency, lookahead, max_events)
            for zone, zone_index in zones
        ]
        self.cpu_seconds = 0.0

    def setup(self) -> Dict[str, Optional[float]]:
        cpu_start = _time.process_time()
        for shard in self.shards:
            shard.setup(self._programs[shard.zone])
        self.cpu_seconds += _time.process_time() - cpu_start
        return {shard.zone: shard.next_time() for shard in self.shards}

    def window(
        self,
        window_end: Union[float, Dict[str, float]],
        until: Optional[float],
        inboxes: Dict[str, List[ChannelMessage]],
    ) -> Tuple[Dict[str, Optional[float]], List[ChannelMessage], int]:
        """One barrier round: deliver, drain, collect the outboxes.

        ``window_end`` is a single horizon for every shard, or (when the
        coordinator widened adaptively) a per-zone map of horizons.
        """
        cpu_start = _time.process_time()
        per_zone = window_end if isinstance(window_end, dict) else None
        outbox: List[ChannelMessage] = []
        dispatched = 0
        for shard in self.shards:
            inbox = inboxes.get(shard.zone)
            if inbox:
                for message in sorted(inbox, key=lambda m: m.sort_key):
                    shard.api.deliver(message)
            before = shard.engine.dispatched_events
            shard.run_window(
                per_zone[shard.zone] if per_zone is not None else window_end,
                until,
            )
            dispatched += shard.engine.dispatched_events - before
            outbox.extend(shard.api.drain_outbox())
        next_times = {shard.zone: shard.next_time() for shard in self.shards}
        self.cpu_seconds += _time.process_time() - cpu_start
        return next_times, outbox, dispatched

    def finalize(self, until: Optional[float]) -> Dict[str, Dict[str, Any]]:
        cpu_start = _time.process_time()
        results = {shard.zone: shard.finalize(until) for shard in self.shards}
        self.cpu_seconds += _time.process_time() - cpu_start
        return results


def _peak_rss_kb() -> float:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0.0
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _lane_worker(lane: _InlineLane, conn) -> None:
    """Fork-lane main loop: commands in, replies out, one pipe.

    The lane object (zones, program factories, latency table) is inherited
    through fork — factories are never pickled.  Only the messages on the
    pipe are, which is exactly the :class:`ChannelMessage` channel the
    protocol defines.
    """
    try:
        conn.send(("ready", lane.setup()))
        while True:
            command = conn.recv()
            op = command[0]
            if op == "window":
                _, window_end, until, inboxes = command
                conn.send(("ok",) + lane.window(window_end, until, inboxes))
            elif op == "finalize":
                _, until = command
                results = lane.finalize(until)
                conn.send(
                    ("result", results, lane.cpu_seconds, _peak_rss_kb())
                )
                return
            else:  # pragma: no cover - protocol misuse
                raise SimulationError(f"unknown lane command {op!r}")
    except BaseException as exc:  # noqa: BLE001 - relayed to the parent
        try:
            conn.send(("error", type(exc).__name__, str(exc), traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass


class _ProcessLane:
    """Parent-side handle for a forked lane: same interface as _InlineLane."""

    def __init__(self, lane: _InlineLane, context) -> None:
        self.index = lane.index
        self.shards = lane.shards  # zone names only; state lives in the child
        self._conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_lane_worker, args=(lane, child_conn), daemon=True
        )
        self._process.start()
        child_conn.close()
        self.cpu_seconds = 0.0
        self.peak_rss_kb = 0.0

    def _recv(self, expected: str):
        reply = self._conn.recv()
        if reply[0] == "error":
            _, name, message, trace = reply
            if name == "SimulationError":
                # Preserve the original message verbatim so callers (and
                # tests) match on it exactly as in the sequential engines.
                raise SimulationError(message)
            raise SimulationError(
                f"lane {self.index} worker failed: {name}: {message}\n{trace}"
            )
        if reply[0] != expected:  # pragma: no cover - protocol misuse
            raise SimulationError(f"lane {self.index}: expected {expected!r} reply")
        return reply

    def setup(self) -> Dict[str, Optional[float]]:
        return self._recv("ready")[1]

    def send_window(
        self,
        window_end: Union[float, Dict[str, float]],
        until: Optional[float],
        inboxes: Dict[str, List[ChannelMessage]],
    ) -> None:
        self._conn.send(("window", window_end, until, inboxes))

    def recv_window(self):
        reply = self._recv("ok")
        return reply[1], reply[2], reply[3]

    def finalize(self, until: Optional[float]) -> Dict[str, Dict[str, Any]]:
        self._conn.send(("finalize", until))
        _, results, self.cpu_seconds, self.peak_rss_kb = self._recv("result")
        self._process.join(timeout=30)
        self._conn.close()
        return results

    def terminate(self) -> None:
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5)


class ParallelShardedSimulationEngine:
    """Conservative-PDES engine running zone shards on parallel OS lanes.

    One-shot: construct with a network and ``{zone: factory}`` programs,
    call :meth:`run`, read :attr:`results` / :attr:`logs` / :attr:`stats`.
    The window protocol is the one :class:`ShardedSimulationEngine` proved
    sequentially — GVT from the global minimum next-event time (pending
    barrier messages included), every lane drains ``[GVT, GVT + lookahead)``
    independently, cross-shard pushes exchanged only at the barrier.

    ``workers`` bounds the lane count (``min(workers, zones)``); zones are
    assigned round-robin by index.  Transport is forked processes where the
    platform has fork and ``workers > 1``; otherwise — including inside
    daemonic pool workers, which may not fork children — the identical
    coordinator loop runs the lanes in-process.  Results never depend on
    the transport or the lane count (see module docstring).
    """

    is_sharded = True

    def __init__(
        self,
        network: NetworkTopology,
        programs: Dict[str, ProgramFactory],
        workers: int = 2,
        lookahead: Optional[float] = None,
        until: Optional[float] = None,
        max_events: int = 50_000_000,
        adaptive_window: bool = True,
        widen_after: int = 4,
        max_widen: float = 16.0,
    ) -> None:
        if not programs:
            raise SimulationError("parallel engine needs at least one zone program")
        self.network = network
        self.programs = dict(programs)
        self.zones: Tuple[str, ...] = tuple(self.programs)
        self.workers = max(1, int(workers))
        self.max_events = max_events
        self._until = until
        self._latency = network.zone_latency_matrix(list(self.zones))
        floor = min(
            (lat for (a, b), lat in self._latency.items() if a != b),
            default=float("inf"),
        )
        horizon = floor if lookahead is None else lookahead
        if not horizon > 0:
            raise SimulationError(
                "lookahead mode needs a positive inter-zone latency "
                f"(got {horizon!r}); zero-latency zones cannot be "
                "windowed — use mode='coupled'"
            )
        if horizon == float("inf"):
            raise SimulationError(
                "lookahead mode needs at least two zones to synchronize"
            )
        if horizon > floor:
            raise SimulationError(
                f"lookahead {horizon} exceeds the minimum effective "
                f"inter-zone latency {floor}; the window would outrun "
                "causality"
            )
        self.lookahead = horizon
        if widen_after < 1:
            raise SimulationError(f"widen_after must be >= 1, got {widen_after}")
        if max_widen < 1.0:
            raise SimulationError(f"max_widen must be >= 1.0, got {max_widen}")
        self._adaptive = bool(adaptive_window)
        self._widen_after = int(widen_after)
        self._max_widen = float(max_widen)
        self.results: Dict[str, Any] = {}
        self.logs: Dict[str, List[Tuple[float, Any]]] = {}
        self.shard_clocks: Dict[str, float] = {}
        self.shard_dispatch_counts: Dict[str, int] = {}
        self.dispatched_events = 0
        self.stats: Dict[str, Any] = {}
        self.now = 0.0
        self._ran = False

    # ------------------------------------------------------------------ run

    def _plan_lanes(self) -> List[List[Tuple[str, int]]]:
        lanes = max(1, min(self.workers, len(self.zones)))
        plan: List[List[Tuple[str, int]]] = [[] for _ in range(lanes)]
        for index, zone in enumerate(self.zones):
            plan[index % lanes].append((zone, index))
        return plan

    def _use_fork(self) -> bool:
        if self.workers <= 1 or len(self.zones) <= 1:
            return False
        if _fork_context() is None:
            return False
        # Daemonic pool workers (the sweep driver's children) may not fork
        # grandchildren; the same coordinator runs the lanes inline there.
        return not multiprocessing.current_process().daemon

    def run(self, until: Optional[float] = None) -> float:
        """Execute the programs to quiescence (or ``until``); one-shot."""
        if self._ran:
            raise SimulationError("ParallelShardedSimulationEngine is one-shot")
        self._ran = True
        if until is None:
            until = self._until
        wall_start = _time.perf_counter()
        cpu_start = _time.process_time()
        fork = self._use_fork()
        plan = self._plan_lanes()
        inline_lanes = [
            _InlineLane(
                index,
                zones,
                self.programs,
                self.zones,
                self._latency,
                self.lookahead,
                self.max_events,
            )
            for index, zones in enumerate(plan)
        ]
        context = _fork_context()
        lanes: List[Any]
        if fork:
            lanes = [_ProcessLane(lane, context) for lane in inline_lanes]
        else:
            lanes = inline_lanes
        windows = 0
        messages = 0
        widened_windows = 0
        max_window_factor = 1.0
        idle_streak = 0
        factor = 1.0
        try:
            next_times: Dict[str, Optional[float]] = {}
            for lane in lanes:
                next_times.update(lane.setup())
            pending: Dict[str, List[ChannelMessage]] = {z: [] for z in self.zones}
            while True:
                # Per-zone earliest dispatchable time: the zone's own next
                # event or any pending barrier message awaiting delivery.
                earliest: Dict[str, float] = {}
                for zone, zone_time in next_times.items():
                    if zone_time is not None:
                        earliest[zone] = zone_time
                for zone, inbox in pending.items():
                    for message in inbox:
                        current = earliest.get(zone)
                        if current is None or message.time < current:
                            earliest[zone] = message.time
                if not earliest:
                    break
                gvt = min(earliest.values())
                if until is not None and gvt > until:
                    break
                window_end = gvt + self.lookahead
                window_ends: Any = window_end
                if factor > 1.0:
                    # Adaptive widening: after enough barrier exchanges with
                    # empty outboxes, drain each zone up to its *per-pair*
                    # safe bound — the earliest instant any other zone's
                    # next dispatchable event could deliver a message to it
                    # (the latency matrix is shortest-path effective
                    # latency, so indirect relays can never arrive earlier).
                    # Always >= gvt + lookahead: per-zone event order (and
                    # hence results) is unchanged, only barrier count drops.
                    cap = gvt + factor * self.lookahead
                    ends: Dict[str, float] = {}
                    any_widened = False
                    for dst in self.zones:
                        bound = min(
                            (
                                earliest[src] + self._latency[(src, dst)]
                                for src in self.zones
                                if src != dst and src in earliest
                            ),
                            default=cap,
                        )
                        end = max(window_end, min(cap, bound))
                        ends[dst] = end
                        if end > window_end:
                            any_widened = True
                            applied = (end - gvt) / self.lookahead
                            if applied > max_window_factor:
                                max_window_factor = applied
                    if any_widened:
                        window_ends = ends
                        widened_windows += 1
                windows += 1
                inboxes_by_lane: List[Dict[str, List[ChannelMessage]]] = []
                for lane, zones in zip(lanes, plan):
                    inboxes = {}
                    for zone, _ in zones:
                        inbox = pending[zone]
                        if inbox:
                            inboxes[zone] = inbox
                            pending[zone] = []
                    inboxes_by_lane.append(inboxes)
                if fork:
                    # Broadcast first, then gather: every lane drains its
                    # window concurrently — this is the parallel section.
                    for lane, inboxes in zip(lanes, inboxes_by_lane):
                        lane.send_window(window_ends, until, inboxes)
                    replies = [lane.recv_window() for lane in lanes]
                else:
                    replies = [
                        lane.window(window_ends, until, inboxes)
                        for lane, inboxes in zip(lanes, inboxes_by_lane)
                    ]
                window_messages = 0
                for lane_next, outbox, dispatched in replies:
                    next_times.update(lane_next)
                    self.dispatched_events += dispatched
                    for message in outbox:
                        if message.dst_zone not in pending:  # pragma: no cover
                            raise SimulationError(
                                f"message routed to unknown zone "
                                f"{message.dst_zone!r}"
                            )
                        pending[message.dst_zone].append(message)
                        messages += 1
                        window_messages += 1
                if window_messages:
                    idle_streak = 0
                    factor = 1.0
                elif self._adaptive:
                    idle_streak += 1
                    if idle_streak >= self._widen_after:
                        factor = min(
                            factor * 2.0 if factor > 1.0 else 2.0,
                            self._max_widen,
                        )
                if self.dispatched_events > self.max_events:
                    raise SimulationError(
                        f"dispatched more than {self.max_events} events; "
                        "likely a self-rescheduling loop"
                    )
            for lane in lanes:
                for zone, info in lane.finalize(until).items():
                    self.results[zone] = info["result"]
                    self.logs[zone] = info["logs"]
                    self.shard_clocks[zone] = info["now"]
                    self.shard_dispatch_counts[zone] = info["dispatched"]
        except BaseException:
            if fork:
                for lane in lanes:
                    lane.terminate()
            raise
        self.dispatched_events = sum(self.shard_dispatch_counts.values())
        total_cpu = _time.process_time() - cpu_start
        lane_cpu = [lane.cpu_seconds for lane in lanes]
        if fork:
            coordinator_cpu = total_cpu
        else:
            # Inline: the parent's own process_time includes the lane work;
            # subtract it so the coordinator figure means the same thing in
            # both transports (barrier + routing overhead only).
            coordinator_cpu = max(0.0, total_cpu - sum(lane_cpu))
        self.stats = {
            "mode": "fork" if fork else "inline",
            "workers": len(lanes),
            "zones": len(self.zones),
            "windows": windows,
            "widened_windows": widened_windows,
            "max_window_factor": max_window_factor,
            "messages": messages,
            "dispatched_events": self.dispatched_events,
            "wall_seconds": _time.perf_counter() - wall_start,
            "lane_cpu_seconds": lane_cpu,
            "max_lane_cpu_seconds": max(lane_cpu, default=0.0),
            "coordinator_cpu_seconds": coordinator_cpu,
            "peak_rss_kb_per_lane": [
                lane.peak_rss_kb if fork else _peak_rss_kb() for lane in lanes
            ],
        }
        if until is not None:
            self.now = until
        else:
            self.now = max(self.shard_clocks.values(), default=0.0)
        return self.now


# ---------------------------------------------------------------------------
# Sequential reference: the same programs on ShardedSimulationEngine
# ---------------------------------------------------------------------------


class _AdapterApi(ShardApi):
    """ShardApi over one zone of a sequential :class:`ShardedSimulationEngine`.

    Same surface, same latency-floor check, same pickle round-trip for
    payloads — the only difference is *when* cross-zone messages enter the
    destination queue (immediately, with the engine's own cross-shard floor
    check, instead of at a window barrier).  Per-zone streams are equivalent
    by the sharded engine's own proof, which is what the equivalence suites
    assert.
    """

    def __init__(
        self,
        zone: str,
        zone_index: int,
        zones: Tuple[str, ...],
        latency: Dict[Tuple[str, str], float],
        lookahead: float,
        engine: ShardedSimulationEngine,
        peers: Dict[str, "_AdapterApi"],
    ) -> None:
        super().__init__(zone, zone_index, zones, latency, lookahead, engine=None)
        self._sharded = engine
        self._peers = peers

    @property
    def now(self) -> float:
        return self._sharded.shard_now(self.zone)

    @property
    def dispatched_events(self) -> int:
        return self._sharded.shard_dispatch_counts.get(self.zone, 0)

    def at(self, time, action, priority=0, label="", shard=None):
        self._check_shard(shard)
        return self._sharded.at(
            time, action, priority=priority, label=label, shard=self.zone
        )

    def after(self, delay, action, priority=0, label="", shard=None):
        self._check_shard(shard)
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r} for event {label!r}")
        return self._sharded.at(
            self.now + delay, action, priority=priority, label=label, shard=self.zone
        )

    def send(
        self,
        dst_zone,
        payload,
        delay=None,
        time=None,
        priority=0,
        label="",
    ):
        if dst_zone == self.zone:
            raise SimulationError(
                f"zone {self.zone!r} cannot send() to itself; use at()/after() "
                "for same-zone scheduling"
            )
        if dst_zone not in self._zones:
            raise SimulationError(
                f"send() to unknown zone {dst_zone!r} (zones: "
                f"{sorted(self._zones)})"
            )
        if (delay is None) == (time is None):
            raise SimulationError("send() takes exactly one of delay= or time=")
        when = self.now + delay if time is None else time
        check_latency_floor(
            self.zone, dst_zone, self.now, when, self.latency_to(dst_zone), label
        )
        peer = self._peers[dst_zone]
        payload_bytes = pickle.dumps(payload)

        def deliver() -> None:
            if peer._handler is None:
                raise SimulationError(
                    f"zone {peer.zone!r} received a message from "
                    f"{self.zone!r} but registered no on_message handler"
                )
            peer._handler(pickle.loads(payload_bytes))

        return self._sharded.at(
            when,
            deliver,
            priority=priority,
            label=f"channel:{self.zone}",
            shard=dst_zone,
        )


def run_programs_sharded(
    network: NetworkTopology,
    programs: Dict[str, ProgramFactory],
    lookahead: Optional[float] = None,
    until: Optional[float] = None,
) -> Dict[str, Any]:
    """Run ``{zone: factory}`` programs on the sequential lookahead engine.

    The reference run for the parallel engine's equivalence suites: same
    program API (:class:`ShardApi` surface), same floor checks, same result
    shape — one OS thread, windows drained shard-major.
    """
    zones = tuple(programs)
    engine = ShardedSimulationEngine(
        network=network, zones=list(zones), mode="lookahead", lookahead=lookahead
    )
    latency = engine._latency
    horizon = engine.lookahead or 0.0
    peers: Dict[str, _AdapterApi] = {}
    apis: Dict[str, _AdapterApi] = {}
    for index, zone in enumerate(zones):
        apis[zone] = _AdapterApi(
            zone, index, zones, latency, horizon, engine, peers
        )
    peers.update(apis)
    result_fns = {
        zone: programs[zone](apis[zone]) for zone in zones
    }
    now = engine.run(until=until)
    return {
        "results": {
            zone: (fn() if fn is not None else None)
            for zone, fn in result_fns.items()
        },
        "logs": {zone: list(apis[zone].logs) for zone in zones},
        "now": now,
        "dispatched_events": engine.dispatched_events,
        "shard_dispatch_counts": {
            zone: engine.shard_dispatch_counts.get(zone, 0) for zone in zones
        },
    }
