"""Virtual clock for the discrete-event simulation kernel.

The clock only ever moves forward; attempting to rewind it is a programming
error and raises immediately, because a silently time-travelling simulation
produces plausible-looking but meaningless schedules.
"""

from __future__ import annotations


class ClockError(RuntimeError):
    """Raised when the virtual clock would move backwards."""


class SimClock:
    """A monotone virtual clock measured in seconds.

    The clock starts at ``0.0`` (or an explicit ``start``) and is advanced by
    the simulation engine as events are dispatched.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises:
            ClockError: if ``timestamp`` is in the past.
        """
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now:.6f} to {timestamp:.6f}"
            )
        self._now = float(timestamp)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds (must be >= 0)."""
        if delta < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta!r}")
        self._now += float(delta)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
