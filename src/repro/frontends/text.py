"""Textual workflow descriptions (Pegasus/ASKALON style, §II).

Grammar (one declaration per line, ``#`` comments):

    data  <name> size=<bytes>
    task  <label> duration=<seconds> [cores=N] [memory_mb=N] [gpus=N]
          [nodes=N] [software=a,b] [reads=d1,d2] [writes=d1:size,d2:size]
          [deterministic=true|false]

Example::

    # a tiny two-stage pipeline
    data raw size=2e9
    task filter duration=30 reads=raw writes=clean:1e9
    task analyze duration=60 cores=4 reads=clean writes=report:1e6

Dependencies are derived from the data declarations exactly like the
programmatic Access Processor derives them from argument accesses, so the
two front-ends produce identical graphs for identical dataflow.
"""

from __future__ import annotations

import shlex
from typing import Dict, List, Tuple

from repro.executor.workflow_builder import SimWorkflowBuilder


class WorkflowSyntaxError(ValueError):
    """Raised with a line number when a description cannot be parsed."""

    def __init__(self, line_number: int, message: str) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


_TASK_INT_FIELDS = {"cores", "memory_mb", "gpus", "nodes"}


def _parse_kv(token: str, line_number: int) -> Tuple[str, str]:
    if "=" not in token:
        raise WorkflowSyntaxError(line_number, f"expected key=value, got {token!r}")
    key, value = token.split("=", 1)
    if not key or not value:
        raise WorkflowSyntaxError(line_number, f"malformed key=value {token!r}")
    return key, value


def _parse_writes(value: str, line_number: int) -> Dict[str, float]:
    outputs: Dict[str, float] = {}
    for item in value.split(","):
        if ":" in item:
            name, size = item.split(":", 1)
            try:
                outputs[name] = float(size)
            except ValueError:
                raise WorkflowSyntaxError(
                    line_number, f"bad output size in {item!r}"
                ) from None
        else:
            outputs[item] = 0.0
    return outputs


def parse_workflow_text(text: str) -> SimWorkflowBuilder:
    """Parse a textual workflow description into a builder (graph + data)."""
    builder = SimWorkflowBuilder()
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = shlex.split(line)
        kind = tokens[0]
        if kind == "data":
            if len(tokens) < 3:
                raise WorkflowSyntaxError(line_number, "data needs a name and size=")
            name = tokens[1]
            fields = dict(_parse_kv(t, line_number) for t in tokens[2:])
            if "size" not in fields:
                raise WorkflowSyntaxError(line_number, "data needs size=<bytes>")
            try:
                size = float(fields["size"])
            except ValueError:
                raise WorkflowSyntaxError(
                    line_number, f"bad data size {fields['size']!r}"
                ) from None
            builder.add_initial_datum(name, size)
        elif kind == "task":
            if len(tokens) < 3:
                raise WorkflowSyntaxError(
                    line_number, "task needs a label and duration="
                )
            label = tokens[1]
            fields = dict(_parse_kv(t, line_number) for t in tokens[2:])
            if "duration" not in fields:
                raise WorkflowSyntaxError(line_number, "task needs duration=<seconds>")
            kwargs: Dict = {"label": label}
            try:
                kwargs["duration"] = float(fields.pop("duration"))
            except ValueError:
                raise WorkflowSyntaxError(line_number, "bad duration") from None
            for field_name in list(fields):
                value = fields.pop(field_name)
                if field_name in _TASK_INT_FIELDS:
                    try:
                        kwargs[field_name] = int(value)
                    except ValueError:
                        raise WorkflowSyntaxError(
                            line_number, f"bad integer for {field_name}={value!r}"
                        ) from None
                elif field_name == "software":
                    kwargs["software"] = tuple(value.split(","))
                elif field_name == "reads":
                    kwargs["inputs"] = value.split(",")
                elif field_name == "writes":
                    kwargs["outputs"] = _parse_writes(value, line_number)
                elif field_name == "deterministic":
                    lowered = value.lower()
                    if lowered not in ("true", "false"):
                        raise WorkflowSyntaxError(
                            line_number,
                            f"deterministic must be true or false, got {value!r}",
                        )
                    kwargs["deterministic"] = lowered == "true"
                else:
                    raise WorkflowSyntaxError(
                        line_number, f"unknown task field {field_name!r}"
                    )
            try:
                builder.add_task(**kwargs)
            except ValueError as error:
                raise WorkflowSyntaxError(line_number, str(error)) from None
        else:
            raise WorkflowSyntaxError(
                line_number, f"unknown declaration {kind!r} (expected data/task)"
            )
    return builder
