"""Workflow description front-ends (§II taxonomy).

The paper's state of the art distinguishes how workflows are described:
graphically (Kepler/Taverna/Galaxy), *textually* "by specifying the graph in
a textual mode" (Pegasus/ASKALON), *programmatically* (PyCOMPSs/Swift/Parsl
— the `@task` API of this library), and via *tagged scripts* processed by a
cycling engine (Cylc/Autosubmit/ecFlow).

This package adds the two non-programmatic front-ends on top of the same
graph machinery:

* :mod:`repro.frontends.text` — a Pegasus-DAX-flavoured textual format;
* :mod:`repro.frontends.suite` — an Autosubmit/Cylc-flavoured cycling suite
  (dated cycles, inter-cycle dependencies like ``sim[-1]``).
"""

from repro.frontends.text import parse_workflow_text, WorkflowSyntaxError
from repro.frontends.suite import CyclingSuite, SuiteTask

__all__ = [
    "parse_workflow_text",
    "WorkflowSyntaxError",
    "CyclingSuite",
    "SuiteTask",
]
