"""Cycling suites: the Cylc/Autosubmit/ecFlow front-end (§II).

Climate and weather centres (the paper cites BSC's Autosubmit and the
Cylc/ecFlow assessment) describe experiments as a small set of task types
repeated over *cycles* (forecast days, ensemble dates), with dependencies
that may point into previous cycles — "the workflows compose large MPI
simulations" chained by restart files.

A :class:`CyclingSuite` declares task types once; :meth:`expand` unrolls
them over N cycles into the same :class:`SimWorkflowBuilder` graphs every
other front-end produces.  Dependency syntax:

* ``"preprocess"``   — the task of the *same* cycle;
* ``"sim[-1]"``      — the task one cycle earlier (dropped at cycle 0);
* ``"init[-2]"``     — two cycles earlier, etc.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.executor.workflow_builder import SimWorkflowBuilder

_DEP_PATTERN = re.compile(r"^(?P<name>[\w./-]+)(\[(?P<offset>-\d+)\])?$")


class SuiteError(ValueError):
    """Raised for malformed suite definitions."""


@dataclass
class SuiteTask:
    """One task type of the suite (repeated every cycle)."""

    name: str
    duration: float
    depends: Sequence[str] = ()
    cores: int = 1
    memory_mb: int = 0
    nodes: int = 1
    software: Sequence[str] = ()
    output_bytes: float = 1e6
    #: False opts every cycle instance of this type out of content-addressed
    #: dedup (e.g. ensemble members drawing fresh random seeds).
    deterministic: bool = True

    def parsed_depends(self) -> List[Tuple[str, int]]:
        """[(task_name, cycle_offset <= 0), ...]"""
        parsed = []
        for dep in self.depends:
            match = _DEP_PATTERN.match(dep)
            if match is None:
                raise SuiteError(f"bad dependency syntax {dep!r} in task {self.name!r}")
            offset = int(match.group("offset") or 0)
            if offset > 0:
                raise SuiteError(
                    f"dependency {dep!r} points to a future cycle; only "
                    "same-cycle or earlier-cycle dependencies are allowed"
                )
            parsed.append((match.group("name"), offset))
        return parsed


class CyclingSuite:
    """A suite definition: task types + cycle expansion."""

    def __init__(self, name: str = "suite") -> None:
        self.name = name
        self._tasks: Dict[str, SuiteTask] = {}
        self._order: List[str] = []

    def add_task(self, task: SuiteTask) -> "CyclingSuite":
        if task.name in self._tasks:
            raise SuiteError(f"duplicate suite task {task.name!r}")
        for dep_name, _offset in task.parsed_depends():
            if dep_name not in self._tasks and dep_name != task.name:
                raise SuiteError(
                    f"task {task.name!r} depends on undeclared task {dep_name!r}; "
                    "declare tasks in dependency order"
                )
        self._tasks[task.name] = task
        self._order.append(task.name)
        return self

    @property
    def task_names(self) -> List[str]:
        return list(self._order)

    def _datum(self, task_name: str, cycle: int) -> str:
        return f"{self.name}/{task_name}@{cycle}"

    def expand(self, cycles: int) -> SimWorkflowBuilder:
        """Unroll the suite over ``cycles`` cycles into a workflow graph.

        Same-cycle dependencies become reads of the producer's cycle output;
        ``[-k]`` dependencies read the output from ``cycle - k`` (silently
        dropped when that cycle predates the experiment, the Cylc
        convention for initial cycles).
        """
        if cycles < 1:
            raise SuiteError(f"cycles must be >= 1, got {cycles}")
        builder = SimWorkflowBuilder()
        for cycle in range(cycles):
            for name in self._order:
                suite_task = self._tasks[name]
                inputs: List[str] = []
                for dep_name, offset in suite_task.parsed_depends():
                    dep_cycle = cycle + offset
                    if dep_cycle < 0:
                        continue  # before the first cycle: no dependency
                    if dep_name == name and offset == 0:
                        raise SuiteError(
                            f"task {name!r} cannot depend on itself in the "
                            "same cycle"
                        )
                    inputs.append(self._datum(dep_name, dep_cycle))
                builder.add_task(
                    f"{name}@{cycle}",
                    duration=suite_task.duration,
                    inputs=inputs,
                    outputs={self._datum(name, cycle): suite_task.output_bytes},
                    cores=suite_task.cores,
                    memory_mb=suite_task.memory_mb,
                    nodes=suite_task.nodes,
                    software=suite_task.software,
                    deterministic=suite_task.deterministic,
                )
        return builder
