"""REST-shaped messages exchanged between agents.

The paper's agents expose a REST API ("Start Application", task submission,
resource updates, result queries).  Each :class:`Op` below corresponds to one
of those operations; :class:`Message` is the envelope the bus moves around.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict


class Op(enum.Enum):
    """The agent REST operations (Fig. 6)."""

    START_APPLICATION = "POST /COMPSs/startApplication"
    EXECUTE_TASK = "POST /COMPSs/task"
    TASK_DONE = "PUT /COMPSs/result"
    TASK_REJECTED = "PUT /COMPSs/rejected"
    ADD_RESOURCES = "PUT /COMPSs/resources/add"
    REMOVE_RESOURCES = "PUT /COMPSs/resources/remove"
    QUERY_STATUS = "GET /COMPSs/status"
    STATUS_REPLY = "200 /COMPSs/status"
    AGENT_DOWN = "NOTIFY /monitor/agentDown"
    SERVICE_REQUEST = "POST /service"
    SERVICE_RESPONSE = "200 /service"


_message_ids = itertools.count(1)


@dataclass
class Message:
    """One message on the bus.

    ``payload_bytes`` is what the network model charges for delivery; control
    messages default to a small fixed envelope, data-carrying messages add
    their data size explicitly.
    """

    op: Op
    sender: str
    recipient: str
    payload: Dict[str, Any] = field(default_factory=dict)
    payload_bytes: float = 512.0
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def __repr__(self) -> str:
        return (
            f"Message#{self.message_id}({self.op.value}, "
            f"{self.sender} -> {self.recipient})"
        )
