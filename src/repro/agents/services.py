"""Web services on agents (§VI-A).

Two of the paper's COMPSs features in agent form:

* a task may be "an invocation to a web service, previously instantiated in
  a node" — :meth:`ServiceMixin.publish_service` instantiates one on an
  agent, :meth:`ServiceMixin.invoke_service` calls it from any peer over
  the REST bus, with requests occupying the provider's cores like any
  other work;
* "a whole COMPSs application can be published as a web service" —
  :func:`publish_application_service` wraps an orchestrated workflow behind
  a service endpoint: each request builds and runs a graph, and the reply
  carries the application's outcome.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.agents.messages import Message, Op
from repro.core.exceptions import AgentError

_request_ids = itertools.count(1)


@dataclass
class ServiceSpec:
    """A service endpoint hosted by an agent."""

    name: str
    handler: Callable[[Any], Any]
    compute_time_s: float = 0.1
    cores: int = 1
    invocations: int = 0


class ServiceMixin:
    """Service behaviour mixed into :class:`~repro.agents.agent.Agent`."""

    def _init_services(self) -> None:
        self._services: Dict[str, ServiceSpec] = {}
        self._service_callbacks: Dict[int, Callable[[Any], None]] = {}

    # ------------------------------------------------------------- provider

    def publish_service(
        self,
        name: str,
        handler: Callable[[Any], Any],
        compute_time_s: float = 0.1,
        cores: int = 1,
    ) -> None:
        """Instantiate a service on this agent and register it on the bus."""
        if name in self._services:
            raise AgentError(f"agent {self.name!r} already publishes {name!r}")
        self._services[name] = ServiceSpec(
            name=name, handler=handler, compute_time_s=compute_time_s, cores=cores
        )
        self.bus.register_service(name, self.name)

    def _on_service_request(self, message: Message) -> None:
        payload = message.payload
        spec = self._services.get(payload["service"])
        if spec is None:
            raise AgentError(
                f"agent {self.name!r} received request for unpublished "
                f"service {payload['service']!r}"
            )
        # Service work occupies cores like any task: reuse the worker queue.
        from repro.agents.agent import _QueuedWork

        def complete_service() -> None:
            spec.invocations += 1
            result = spec.handler(payload.get("argument"))
            self.bus.send(
                Message(
                    op=Op.SERVICE_RESPONSE,
                    sender=self.name,
                    recipient=message.sender,
                    payload={
                        "request_id": payload["request_id"],
                        "result": result,
                    },
                )
            )

        work = _QueuedWork(
            task_id=-payload["request_id"],  # negative ids: service work
            origin=message.sender,
            cores=min(spec.cores, self.cores),
            duration_s=spec.compute_time_s,
            stage_in_s=0.0,
            output_sizes={},
        )
        work.on_complete = complete_service  # type: ignore[attr-defined]
        self._queue.append(work)
        self._pump_queue()

    # --------------------------------------------------------------- client

    def invoke_service(
        self,
        name: str,
        argument: Any = None,
        on_reply: Optional[Callable[[Any], None]] = None,
    ) -> int:
        """Call a service by name; ``on_reply`` fires with the result.

        Returns the request id.  Calls to services whose provider has died
        are dropped by the bus (no reply), like a refused connection.
        """
        provider = self.bus.find_service(name)
        if provider is None:
            raise AgentError(f"no agent publishes service {name!r}")
        request_id = next(_request_ids)
        if on_reply is not None:
            self._service_callbacks[request_id] = on_reply
        self.bus.send(
            Message(
                op=Op.SERVICE_REQUEST,
                sender=self.name,
                recipient=provider,
                payload={
                    "service": name,
                    "argument": argument,
                    "request_id": request_id,
                },
            )
        )
        return request_id

    def _on_service_response(self, message: Message) -> None:
        callback = self._service_callbacks.pop(
            message.payload["request_id"], None
        )
        if callback is not None:
            callback(message.payload["result"])


def publish_application_service(
    agent,
    name: str,
    graph_factory: Callable[[Any], Any],
    policy=None,
    peers=None,
) -> None:
    """Publish a whole workflow application as a service on ``agent``.

    Each request builds a fresh graph via ``graph_factory(argument)`` and
    orchestrates it on a *dedicated orchestration context*; the reply
    carries ``{"completed": ..., "tasks_done": ..., "makespan": ...}``.

    Note: the hosting agent must not already be orchestrating; concurrent
    requests are serialized (one application at a time), mirroring how a
    published COMPSs service instantiates the application per request.
    """

    pending: list = []

    def handler(argument: Any) -> Any:
        graph = graph_factory(argument)
        # Orchestrate on the hosting agent; completion is observed when the
        # graph finishes (the engine keeps running events until then).
        if agent.graph is not None:
            # Serialize: previous application must have finished.
            if not agent.graph.finished:
                return {"completed": False, "error": "busy"}
            agent.reset_orchestration()
        agent.start_application(graph, policy=policy, peers=peers)
        pending.append(graph)
        return {"accepted": True}

    agent.publish_service(name, handler, compute_time_s=0.01)
