"""The COMPSs Agent: orchestrator + worker microservice (Fig. 6).

Every agent can both *orchestrate* an application (own its task graph, run
the Access-Processor/Task-Scheduler pipeline, decide offloading) and *work*
for peers (accept EXECUTE_TASK requests against its local resources) — "Each
Agent is independent of the other and can execute the same application code
acting as a worker whenever needed".

Data model (mirrors the paper's dataClay integration, §VI-B):

* without persistence, a task's outputs live only on the agent that ran it;
  consumers dispatched elsewhere ship the bytes from that agent, and an agent
  crash loses everything it produced;
* with a persistence store configured, "whenever a task is submitted to a
  remote agent, the COMPSs runtime persists any not-yet-persisted object
  passed in as a parameter", and every produced value is stored "so any
  other agent ... can use that value for succeeding executions" — which is
  what makes crash recovery possible (claim C5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.agents.bus import MessageBus
from repro.agents.messages import Message, Op
from repro.agents.offloading import NeverOffload, OffloadingPolicy, PeerInfo
from repro.agents.services import ServiceMixin
from repro.core.exceptions import AgentError
from repro.core.graph import TaskGraph, TaskInstance, TaskState

_CONTROL_BYTES = 512.0


@dataclass
class AgentReport:
    """Outcome of an orchestrated application."""

    completed: bool
    failed: bool
    makespan: float
    tasks_done: int
    tasks_recovered: int
    executed_by: Dict[str, int] = field(default_factory=dict)
    messages_sent: int = 0


@dataclass
class _InFlight:
    task: TaskInstance
    executor: str


@dataclass
class _QueuedWork:
    """A task accepted by a worker agent, waiting for or holding cores."""

    task_id: int
    origin: str
    cores: int
    duration_s: float
    stage_in_s: float
    output_sizes: Dict[str, float]
    running: bool = False


class Agent(ServiceMixin):
    """One microservice runtime instance pinned to a platform node."""

    def __init__(
        self,
        name: str,
        node_name: str,
        bus: MessageBus,
        persistence_store_node: Optional[str] = None,
    ) -> None:
        self.name = name
        self.node_name = node_name
        self.bus = bus
        self.platform = bus.platform
        self.engine = bus.engine
        node = self.platform.node(node_name)
        self.cores = node.cores
        self.speed_factor = node.speed_factor
        self.kind = node.kind.value
        self.persistence_store_node = persistence_store_node
        bus.register(self)

        # Worker state.
        self._free_cores = self.cores
        self._queue: List[_QueuedWork] = []
        self.tasks_executed = 0

        # Orchestrator state.
        self.graph: Optional[TaskGraph] = None
        self._peers: Dict[str, PeerInfo] = {}
        self._policy: OffloadingPolicy = NeverOffload()
        self._in_flight: Dict[int, _InFlight] = {}
        # Secondary indexes so an AGENT_DOWN notice costs O(state at the
        # dead agent), not O(all in-flight + all data).  Inner dicts are
        # insertion-ordered sets (iteration order = dispatch/publish order,
        # matching what the flat scans used to produce).
        self._in_flight_by_executor: Dict[str, Dict[int, None]] = {}
        self._home_index: Dict[str, Dict[str, None]] = {}
        self._local_outstanding = 0
        self._datum_home: Dict[str, str] = {}
        self._datum_size: Dict[str, float] = {}
        self._datum_persisted: Set[str] = set()
        self.app_start: Optional[float] = None
        self.app_end: Optional[float] = None
        self.app_failed = False
        self.tasks_recovered = 0
        self.executed_by: Dict[str, int] = {}
        self._init_services()

    # ------------------------------------------------------------- REST API

    def handle(self, message: Message) -> None:
        """Entry point for every delivered message (the REST dispatcher)."""
        handler = {
            Op.START_APPLICATION: self._on_start_application,
            Op.EXECUTE_TASK: self._on_execute_task,
            Op.TASK_DONE: self._on_task_done,
            Op.ADD_RESOURCES: self._on_add_resources,
            Op.REMOVE_RESOURCES: self._on_remove_resources,
            Op.QUERY_STATUS: self._on_query_status,
            Op.STATUS_REPLY: lambda m: None,
            Op.AGENT_DOWN: self._on_agent_down,
            Op.TASK_REJECTED: lambda m: None,
            Op.SERVICE_REQUEST: self._on_service_request,
            Op.SERVICE_RESPONSE: self._on_service_response,
        }.get(message.op)
        if handler is None:
            raise AgentError(f"agent {self.name!r}: unhandled op {message.op}")
        handler(message)

    # --------------------------------------------------------- orchestration

    def start_application(
        self,
        graph: TaskGraph,
        policy: Optional[OffloadingPolicy] = None,
        peers: Optional[List[str]] = None,
        initial_data: Optional[Dict[str, float]] = None,
    ) -> None:
        """Begin orchestrating ``graph`` (the REST Start Application op)."""
        if self.graph is not None:
            raise AgentError(f"agent {self.name!r} is already orchestrating")
        self.graph = graph
        if policy is not None:
            self._policy = policy
        for peer_name in peers or []:
            peer = self.bus.agent(peer_name)
            self._peers[peer_name] = PeerInfo(
                name=peer_name,
                cores=peer.cores,
                speed_factor=peer.speed_factor,
                kind=peer.kind,
                outstanding=0,
                zone=self.bus.zone_of_agent(peer_name),
            )
            # Subscribe to the peer's death notice before any message flows:
            # under interest-scoped failure notification a peer dying between
            # Start Application and the first dispatch is still detected.
            self.bus.watch(self.name, peer_name)
        for datum, size in (initial_data or {}).items():
            self._set_datum_home(datum, self.name)
            self._datum_size[datum] = size
            if self.persistence_store_node is not None:
                self._datum_persisted.add(datum)
        self.app_start = self.engine.now
        self._dispatch()

    def _on_start_application(self, message: Message) -> None:
        self.start_application(
            graph=message.payload["graph"],
            policy=message.payload.get("policy"),
            peers=message.payload.get("peers"),
            initial_data=message.payload.get("initial_data"),
        )

    def _dispatch(self) -> None:
        if self.graph is None or self.app_failed:
            return
        local_info = PeerInfo(
            name=self.name,
            cores=self.cores,
            speed_factor=self.speed_factor,
            kind=self.kind,
            outstanding=self._local_outstanding,
        )
        for task in list(self.graph.ready_tasks()):
            target = self._policy.choose(task, local_info, list(self._peers.values()))
            self._send_task(task, target)
            if target == self.name:
                self._local_outstanding += 1
                local_info.outstanding = self._local_outstanding
            else:
                self._peers[target].outstanding += 1

    def _set_datum_home(self, datum: str, home: str) -> None:
        old = self._datum_home.get(datum)
        if old is not None and old != home:
            index = self._home_index.get(old)
            if index is not None:
                index.pop(datum, None)
        self._datum_home[datum] = home
        index = self._home_index.get(home)
        if index is None:
            index = self._home_index[home] = {}
        index[datum] = None

    def _send_task(self, task: TaskInstance, target: str) -> None:
        assert self.graph is not None
        self.graph.mark_running(task.task_id, target, now=self.engine.now)
        task.assigned_nodes = [target]
        self._in_flight[task.task_id] = _InFlight(task=task, executor=target)
        by_executor = self._in_flight_by_executor.get(target)
        if by_executor is None:
            by_executor = self._in_flight_by_executor[target] = {}
        by_executor[task.task_id] = None

        profile = task.profile
        input_specs = []
        shipped_bytes = 0.0
        for datum in task.reads:
            size = self._datum_size.get(datum, 0.0)
            persisted = datum in self._datum_persisted
            home = self._datum_home.get(datum, self.name)
            input_specs.append(
                {"datum": datum, "size": size, "persisted": persisted, "home": home}
            )
            # Non-persisted inputs homed at the orchestrator travel with the
            # request; inputs homed elsewhere are fetched by the worker.
            if not persisted and home == self.name and target != self.name:
                shipped_bytes += size

        payload = {
            "task_id": task.task_id,
            "origin": self.name,
            "cores": task.requirements.cores,
            "duration_s": profile.duration_s if profile else 0.0,
            "inputs": input_specs,
            "outputs": dict(profile.output_sizes) if profile else {},
        }
        self.bus.send(
            Message(
                op=Op.EXECUTE_TASK,
                sender=self.name,
                recipient=target,
                payload=payload,
                payload_bytes=_CONTROL_BYTES + shipped_bytes,
            )
        )

    def _on_task_done(self, message: Message) -> None:
        if self.graph is None:
            return
        task_id = message.payload["task_id"]
        executor = message.sender
        flight = self._in_flight.pop(task_id, None)
        if flight is None:
            return  # duplicate completion after recovery re-dispatch
        by_executor = self._in_flight_by_executor.get(flight.executor)
        if by_executor is not None:
            by_executor.pop(task_id, None)
        if executor == self.name:
            self._local_outstanding = max(0, self._local_outstanding - 1)
        elif executor in self._peers:
            self._peers[executor].outstanding = max(
                0, self._peers[executor].outstanding - 1
            )
        for datum, size in message.payload.get("outputs", {}).items():
            self._set_datum_home(datum, executor)
            self._datum_size[datum] = size
            if message.payload.get("persisted", False):
                self._datum_persisted.add(datum)
        self.executed_by[executor] = self.executed_by.get(executor, 0) + 1
        self.graph.mark_done(task_id, now=self.engine.now)
        if self.graph.finished:
            self.app_end = self.engine.now
        else:
            self._dispatch()

    def _on_agent_down(self, message: Message) -> None:
        dead = message.payload["agent"]
        peer_dropped = self._peers.pop(dead, None) is not None
        if self.graph is None:
            return
        # O(state at the dead agent): the executor/home indexes hand us the
        # affected flights and data directly, and an uninvolved orchestrator
        # (nothing in flight there, nothing homed there) exits immediately —
        # no O(in-flight) or O(data) scan per death.
        flights = self._in_flight_by_executor.pop(dead, None)
        homed = self._home_index.pop(dead, None)
        if not peer_dropped and not flights and not homed:
            return
        lost_data = {
            datum for datum in (homed or ()) if datum not in self._datum_persisted
        }
        for task_id in flights or ():
            flight = self._in_flight.pop(task_id, None)
            if flight is None:
                continue
            task = flight.task
            if any(d in lost_data for d in task.reads):
                self._fail_application(
                    f"task {task.label} inputs lost with agent {dead}"
                )
                return
            self.graph.requeue(task.task_id)
            self.tasks_recovered += 1
        # Data produced by the dead agent that future tasks need:
        if lost_data:
            for task in self.graph.tasks:
                if task.state in (TaskState.PENDING, TaskState.READY):
                    if any(d in lost_data for d in task.reads):
                        self._fail_application(
                            f"task {task.label} inputs lost with agent {dead}"
                        )
                        return
        self._dispatch()

    def _fail_application(self, reason: str) -> None:
        self.app_failed = True
        self.app_end = self.engine.now
        self.failure_reason = reason

    # --------------------------------------------------------------- worker

    def _on_execute_task(self, message: Message) -> None:
        payload = message.payload
        stage_in = self._stage_in_time(payload["inputs"], payload["origin"])
        work = _QueuedWork(
            task_id=payload["task_id"],
            origin=payload["origin"],
            cores=min(payload["cores"], self.cores),
            duration_s=payload["duration_s"],
            stage_in_s=stage_in,
            output_sizes=dict(payload["outputs"]),
        )
        self._queue.append(work)
        self._pump_queue()

    def _stage_in_time(self, inputs: List[dict], origin: str) -> float:
        """Parallel-fetch model over inputs not already local to this agent."""
        worst = 0.0
        network = self.platform.network
        for spec in inputs:
            datum, size, persisted, home = (
                spec["datum"],
                spec["size"],
                spec["persisted"],
                spec["home"],
            )
            if size <= 0:
                continue
            if persisted and self.persistence_store_node is not None:
                src = self.persistence_store_node
            elif home == self.name:
                continue
            elif home == origin:
                continue  # travelled with the request; bus already charged it
            else:
                if not self.bus.is_alive(home):
                    continue  # unreachable; orchestrator handles the failure
                src = self.bus.agent(home).node_name
            if src == self.node_name:
                continue
            duration = network.transfer_time(src, self.node_name, size)
            network.record_transfer(
                src, self.node_name, size, self.engine.now, duration, datum=datum
            )
            worst = max(worst, duration)
        return worst

    def _pump_queue(self) -> None:
        for work in self._queue:
            if work.running:
                continue
            if work.cores <= self._free_cores:
                work.running = True
                self._free_cores -= work.cores
                total = work.stage_in_s + work.duration_s / self.speed_factor
                persist_delay = self._persist_time(work.output_sizes)
                self.engine.after(
                    total + persist_delay,
                    lambda w=work: self._finish_work(w),
                    label=f"{self.name}-exec-{work.task_id}",
                )

    def _drain_battery(self, work: _QueuedWork) -> bool:
        """Charge the device battery for the work done; True when depleted."""
        node = self.platform.node(self.node_name)
        if node.battery_joules is None:
            return False
        execution_seconds = work.stage_in_s + work.duration_s / self.speed_factor
        drained = node.power.power(work.cores) * execution_seconds
        node.battery_joules -= drained
        return node.battery_joules <= 0

    def _persist_time(self, output_sizes: Dict[str, float]) -> float:
        if self.persistence_store_node is None or not output_sizes:
            return 0.0
        network = self.platform.network
        return max(
            network.transfer_time(self.node_name, self.persistence_store_node, size)
            for size in output_sizes.values()
        )

    def _finish_work(self, work: _QueuedWork) -> None:
        if work not in self._queue:
            return  # agent was killed; stale completion
        self._queue.remove(work)
        self._free_cores += work.cores
        self.tasks_executed += 1
        if self._drain_battery(work):
            # Battery died finishing this task: the result is lost with the
            # device — the paper's "disappeared for low battery" scenario.
            self.bus.kill_now(self.name)
            return
        on_complete = getattr(work, "on_complete", None)
        if on_complete is not None:
            # Service work replies through its own completion, not TASK_DONE.
            on_complete()
            self._pump_queue()
            return
        self.bus.send(
            Message(
                op=Op.TASK_DONE,
                sender=self.name,
                recipient=work.origin,
                payload={
                    "task_id": work.task_id,
                    "outputs": dict(work.output_sizes),
                    "persisted": self.persistence_store_node is not None,
                },
            )
        )
        self._pump_queue()

    # ------------------------------------------------------------- resources

    def _on_add_resources(self, message: Message) -> None:
        extra = int(message.payload.get("cores", 0))
        if extra <= 0:
            raise AgentError("ADD_RESOURCES requires a positive core count")
        self.cores += extra
        self._free_cores += extra
        self._pump_queue()

    def _on_remove_resources(self, message: Message) -> None:
        fewer = int(message.payload.get("cores", 0))
        removable = min(fewer, self._free_cores, self.cores - 1)
        self.cores -= removable
        self._free_cores -= removable

    def _on_query_status(self, message: Message) -> None:
        self.bus.send(
            Message(
                op=Op.STATUS_REPLY,
                sender=self.name,
                recipient=message.sender,
                payload={
                    "queued": len(self._queue),
                    "free_cores": self._free_cores,
                    "executed": self.tasks_executed,
                },
            )
        )

    def reset_orchestration(self) -> None:
        """Clear finished-application state so a new one can start.

        Required by application-as-a-service hosting: each request
        orchestrates a fresh graph on the same agent.
        """
        if self.graph is not None and not self.graph.finished and not self.app_failed:
            raise AgentError(
                f"agent {self.name!r} is still orchestrating; cannot reset"
            )
        self.graph = None
        self._peers = {}
        self._in_flight = {}
        self._in_flight_by_executor = {}
        # _home_index stays: it mirrors _datum_home, which outlives the
        # application (data published by one app can seed the next).
        self._local_outstanding = 0
        self.app_start = None
        self.app_end = None
        self.app_failed = False

    # -------------------------------------------------------------- failures

    def on_killed(self) -> None:
        """Bus callback: this agent crashed — drop all local state."""
        self._queue.clear()
        self._free_cores = self.cores
        if self.graph is not None and not self.app_failed and self.app_end is None:
            self._fail_application("orchestrator agent died")

    # --------------------------------------------------------------- report

    def report(self) -> AgentReport:
        """Summary of the orchestrated application (orchestrator only)."""
        if self.graph is None:
            raise AgentError(f"agent {self.name!r} never orchestrated an application")
        makespan = 0.0
        if self.app_start is not None and self.app_end is not None:
            makespan = self.app_end - self.app_start
        return AgentReport(
            completed=self.graph.finished and not self.app_failed,
            failed=self.app_failed,
            makespan=makespan,
            tasks_done=self.graph.completed_count,
            tasks_recovered=self.tasks_recovered,
            executed_by=dict(self.executed_by),
            messages_sent=self.bus.messages_sent,
        )
