"""Offloading policies: where an agent sends each ready task.

"the framework can be used to instantiate applications on smart devices on
the fog layer and to offload part of the computation to the cloud
(fog-to-cloud) or use the fog devices as workers for a cloud application"
(§VI-B).  A policy sees the orchestrator's view — its own queue depth and
the peer agents it knows — and picks an executor agent per task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Protocol

from repro.core.graph import TaskInstance

if TYPE_CHECKING:
    from repro.agents.agent import Agent


@dataclass
class PeerInfo:
    """What an orchestrator knows about a peer agent."""

    name: str
    cores: int
    speed_factor: float
    kind: str  # "edge" | "fog" | "cloud" | "hpc"
    outstanding: int  # tasks this orchestrator has sent there and not heard back
    zone: Optional[str] = None  # network zone, for zone-local peer selection


class ZoneLocalOffload:
    """Offload within the orchestrator's zone; spill to remote peers only
    when every zone-local peer is saturated.

    Fleet-scale policy: at ~50k agents an orchestrator's candidate set is
    the O(zone) live membership (``MessageBus.alive_in_zone``), not the
    whole continuum, and this policy keeps the traffic there too.
    """

    name = "zone-local"

    def __init__(self, zone: str, threshold: float = 4.0) -> None:
        self.zone = zone
        self.threshold = threshold

    def choose(self, task: TaskInstance, local: PeerInfo, peers: List[PeerInfo]) -> str:
        if not peers:
            return local.name

        def load(p: PeerInfo) -> float:
            return p.outstanding / max(1, p.cores)

        locals_ = [p for p in peers if p.zone == self.zone]
        if locals_:
            best = min(locals_, key=load)
            if load(best) < self.threshold:
                return best.name
        remote = [p for p in peers if p.zone != self.zone]
        if remote:
            return min(remote, key=load).name
        return min(peers, key=load).name if locals_ else local.name


class OffloadingPolicy(Protocol):
    """Chooses the executing agent for one ready task."""

    name: str

    def choose(
        self,
        task: TaskInstance,
        local: PeerInfo,
        peers: List[PeerInfo],
    ) -> str:
        """Return the chosen agent name (may be ``local.name``)."""
        ...


class NeverOffload:
    """Fog-only baseline: everything runs on the orchestrating agent."""

    name = "never-offload"

    def choose(self, task: TaskInstance, local: PeerInfo, peers: List[PeerInfo]) -> str:
        return local.name


class AlwaysOffload:
    """Ship every task to the least-loaded remote peer (cloud-first)."""

    name = "always-offload"

    def choose(self, task: TaskInstance, local: PeerInfo, peers: List[PeerInfo]) -> str:
        if not peers:
            return local.name
        clouds = [p for p in peers if p.kind == "cloud"]
        pool = clouds if clouds else peers
        return min(pool, key=lambda p: p.outstanding / max(1, p.cores)).name


class LoadThresholdOffload:
    """Offload only once the local device saturates (fog-to-cloud, E6).

    Keeps tasks local while the local backlog per core stays under
    ``threshold``; beyond it, ships work to the least-loaded peer, preferring
    cloud agents (they are faster but behind a WAN).
    """

    name = "load-threshold"

    def __init__(self, threshold: float = 2.0, prefer_cloud: bool = True) -> None:
        self.threshold = threshold
        self.prefer_cloud = prefer_cloud

    def choose(self, task: TaskInstance, local: PeerInfo, peers: List[PeerInfo]) -> str:
        local_pressure = local.outstanding / max(1, local.cores)
        if local_pressure < self.threshold or not peers:
            return local.name

        def load(p: PeerInfo) -> float:
            return p.outstanding / max(1, p.cores)

        if self.prefer_cloud:
            clouds = [p for p in peers if p.kind == "cloud"]
            if clouds:
                best_cloud = min(clouds, key=load)
                if load(best_cloud) < local_pressure:
                    return best_cloud.name
        best = min(peers, key=load)
        return best.name if load(best) < local_pressure else local.name
