"""The message bus: in-process substitute for the agents' REST transport.

Delivery takes the virtual time the platform's network model charges for the
message's payload between the two agents' nodes.  The bus doubles as the
failure detector.  Two notification models are supported:

* ``interest`` (default) — when an agent dies, only its *interest set* is
  notified: the peers that have exchanged messages with it plus any explicit
  :meth:`watch` subscribers.  Every other agent learns of the death lazily,
  by reconciling against the per-zone membership-epoch digest
  (:meth:`membership_epoch` / :meth:`changes_since`).  Per-death cost is
  O(interest set), not O(agents) — the property that lets a ~50k-agent
  continuum sustain 1%/s churn at flat per-event cost.
* ``broadcast`` — the original perfect-failure-detector reference: one
  ``AGENT_DOWN`` notice per survivor per death (O(agents²) under churn).
  Kept as the equivalence baseline; ``tests/test_churn_equivalence.py``
  proves both models produce identical orchestration outcomes.

The substitution is semantics-preserving because every agent that would have
*acted* on an ``AGENT_DOWN`` notice — an orchestrator with the dead agent in
its peer set, with tasks in flight there, or with data homed there — has
necessarily either exchanged messages with it or watched it, so it is in the
interest set and still hears about the death one control-message hop after
it happens, exactly as under broadcast (see DESIGN.md's substitution table).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, KeysView, List, Optional, Tuple

from repro.agents.messages import Message, Op
from repro.core.exceptions import AgentError
from repro.infrastructure.platform import Platform
from repro.simulation.engine import SimulationEngine

if TYPE_CHECKING:
    from repro.agents.agent import Agent

#: Failure-detection latency: one control-message hop (both models).
_DETECT_DELAY_S = 0.1

#: Recent dropped messages kept for diagnostics (the full history is a
#: counter; an unbounded list would grow O(messages) under sustained churn).
_DROP_LOG_LIMIT = 64

#: Membership changes remembered per zone.  An observer whose cached epoch
#: has fallen further behind than this gets ``None`` from
#: :meth:`MessageBus.changes_since` and must resync from the live set.
_EPOCH_LOG_LIMIT = 4096


def _no_zone(node_name: str) -> None:
    """Shard resolver for single-timeline engines: everything is unsharded."""
    return None


class MessageBus:
    """Registry + virtual-time delivery between agents."""

    def __init__(
        self,
        platform: Platform,
        engine: SimulationEngine,
        notification: str = "interest",
    ) -> None:
        if notification not in ("interest", "broadcast"):
            raise AgentError(f"unknown notification model {notification!r}")
        self.platform = platform
        self.engine = engine
        self.notification = notification
        # Deliveries and kills are node-local: carry the node's zone so a
        # sharded engine files them on the zone's own timeline.  The message
        # delay already pays at least the zone link latency (payloads are
        # never free), which is exactly the cross-shard causality contract
        # lookahead mode enforces.
        if getattr(engine, "is_sharded", False):
            self._zone_of = platform.network.zone_of
        else:
            self._zone_of = _no_zone
        self._agents: Dict[str, "Agent"] = {}
        # Live-set bookkeeping.  Plain dicts double as insertion-ordered
        # sets: iteration order is deterministic (unlike ``set`` of strings,
        # whose order depends on the per-process hash seed), which the
        # byte-identical engine-equivalence suites rely on.
        self._alive: Dict[str, bool] = {}
        self._alive_set: Dict[str, None] = {}
        self._zone_alive: Dict[str, Dict[str, None]] = {}
        self._agent_zone: Dict[str, str] = {}
        # Interest sets: agent -> peers to notify when it dies.  Populated
        # symmetrically on every send() plus explicit watch() subscriptions.
        self._interest: Dict[str, Dict[str, None]] = {}
        # Per-zone membership epochs and bounded change logs (epoch, name,
        # alive) for lazy reconciliation by late observers.
        self._zone_epoch: Dict[str, int] = {}
        self._zone_changes: Dict[str, Deque[Tuple[int, str, bool]]] = {}
        # Service registry: service name -> ordered provider agents.  Several
        # agents may provide the same service; lookup skips dead providers in
        # registration order (deterministic failover).
        self._services: Dict[str, Dict[str, None]] = {}
        self.messages_sent = 0
        self.bytes_sent = 0.0
        self.dropped_count = 0
        self.dropped_messages: Deque[Message] = deque(maxlen=_DROP_LOG_LIMIT)
        #: AGENT_DOWN notices scheduled over the bus lifetime — the benches
        #: subtract these to report *useful* events/sec under churn.
        self.down_notices = 0
        self.deaths = 0

    # -------------------------------------------------------------- registry

    def register(self, agent: "Agent") -> None:
        if agent.name in self._agents:
            raise AgentError(f"agent {agent.name!r} already registered")
        self._agents[agent.name] = agent
        self._alive[agent.name] = True
        self._alive_set[agent.name] = None
        zone = self.platform.network.zone_of(agent.node_name)
        self._agent_zone[agent.name] = zone
        members = self._zone_alive.get(zone)
        if members is None:
            members = self._zone_alive[zone] = {}
            self._zone_epoch[zone] = 0
            self._zone_changes[zone] = deque(maxlen=_EPOCH_LOG_LIMIT)
        members[agent.name] = None
        epoch = self._zone_epoch[zone] + 1
        self._zone_epoch[zone] = epoch
        self._zone_changes[zone].append((epoch, agent.name, True))

    def agent(self, name: str) -> "Agent":
        try:
            return self._agents[name]
        except KeyError:
            raise AgentError(f"unknown agent {name!r}") from None

    def is_alive(self, name: str) -> bool:
        return self._alive.get(name, False)

    @property
    def alive_agents(self) -> List[str]:
        """Names of live agents, in registration order (O(alive), no scan
        over the dead)."""
        return list(self._alive_set)

    @property
    def alive_count(self) -> int:
        """O(1) live-agent count (the old path rebuilt a list to len() it)."""
        return len(self._alive_set)

    def alive_in_zone(self, zone: str) -> KeysView[str]:
        """Live agents homed in ``zone``, as a zero-copy ordered view.

        Callers must not mutate the result; it changes underneath them on
        the next register/kill.  ``list()`` it for a stable snapshot.
        """
        members = self._zone_alive.get(zone)
        return members.keys() if members is not None else {}.keys()

    def zone_of_agent(self, name: str) -> str:
        try:
            return self._agent_zone[name]
        except KeyError:
            raise AgentError(f"unknown agent {name!r}") from None

    # --------------------------------------------------- membership digests

    def membership_epoch(self, zone: str) -> int:
        """Current membership epoch for ``zone`` (bumped on join and death)."""
        return self._zone_epoch.get(zone, 0)

    def changes_since(
        self, zone: str, epoch: int
    ) -> Optional[List[Tuple[str, bool]]]:
        """Membership deltas ``(agent, alive)`` after ``epoch``, oldest first.

        The lazy half of the failure detector: an observer caches the epoch
        it last reconciled at and folds the returned deltas into its view —
        O(changes since), not O(zone).  Returns ``None`` when ``epoch`` has
        fallen out of the bounded change log; the observer must then resync
        from :meth:`alive_in_zone` (and adopt the current epoch).
        """
        current = self._zone_epoch.get(zone, 0)
        if epoch >= current:
            return []
        log = self._zone_changes.get(zone)
        if log is None or current - epoch > len(log):
            return None
        return [(name, alive) for e, name, alive in log if e > epoch]

    def deaths_since(self, zone: str, epoch: int) -> Optional[List[str]]:
        """Like :meth:`changes_since`, deaths only (None = resync needed)."""
        changes = self.changes_since(zone, epoch)
        if changes is None:
            return None
        return [name for name, alive in changes if not alive]

    # -------------------------------------------------------------- services

    def register_service(self, service_name: str, agent_name: str) -> None:
        """Record a service endpoint (the bus is also the service registry).

        Several agents may register the same service; re-registering the
        same (service, provider) pair is an error.
        """
        providers = self._services.get(service_name)
        if providers is None:
            providers = self._services[service_name] = {}
        if agent_name in providers:
            raise AgentError(
                f"service {service_name!r} already registered by {agent_name!r}"
            )
        providers[agent_name] = None

    def find_service(self, service_name: str) -> Optional[str]:
        """First *live* provider of a service, in registration order.

        Deterministic failover: when the primary dies, the next-registered
        live provider takes over; ``None`` once every provider is dead or
        the service is unknown.
        """
        providers = self._services.get(service_name)
        if not providers:
            return None
        alive = self._alive
        for provider in providers:
            if alive.get(provider, False):
                return provider
        return None

    def service_providers(self, service_name: str) -> List[str]:
        """All registered providers (dead included), in registration order."""
        return list(self._services.get(service_name, ()))

    # ------------------------------------------------------------- messaging

    def send(self, message: Message) -> None:
        """Deliver a message after the network-model transfer time.

        Messages to dead agents are dropped (the sender learns about the
        death through its AGENT_DOWN notice, like a connection refusing).
        Every exchange also enrolls both endpoints in each other's interest
        set, which is what scopes failure notification.
        """
        sender, recipient = message.sender, message.recipient
        if sender not in self._agents:
            raise AgentError(f"unknown sender {sender!r}")
        if recipient not in self._agents:
            raise AgentError(f"unknown recipient {recipient!r}")
        self.messages_sent += 1
        self.bytes_sent += message.payload_bytes
        self._note_interest(sender, recipient)
        src_node = self._agents[sender].node_name
        dst_node = self._agents[recipient].node_name
        delay = self.platform.network.transfer_time(
            src_node, dst_node, message.payload_bytes
        )
        self.engine.after(
            delay,
            lambda: self._deliver(message),
            label=f"deliver-{message.op.name}-{message.message_id}",
            shard=self._zone_of(dst_node),
        )

    def _note_interest(self, a: str, b: str) -> None:
        interest = self._interest
        peers = interest.get(b)
        if peers is None:
            peers = interest[b] = {}
        peers[a] = None
        peers = interest.get(a)
        if peers is None:
            peers = interest[a] = {}
        peers[b] = None

    def watch(self, watcher: str, target: str) -> None:
        """Subscribe ``watcher`` to ``target``'s death notice explicitly.

        Orchestrators watch their declared peers before any message flows,
        so a peer dying between Start Application and the first task
        dispatch is still detected.
        """
        if watcher not in self._agents:
            raise AgentError(f"unknown watcher {watcher!r}")
        if target not in self._agents:
            raise AgentError(f"unknown watch target {target!r}")
        peers = self._interest.get(target)
        if peers is None:
            peers = self._interest[target] = {}
        peers[watcher] = None

    def unwatch(self, watcher: str, target: str) -> None:
        """Drop an explicit subscription (message-derived interest stays)."""
        peers = self._interest.get(target)
        if peers is not None:
            peers.pop(watcher, None)

    def _deliver(self, message: Message) -> None:
        if not self._alive.get(message.recipient, False):
            self.dropped_count += 1
            self.dropped_messages.append(message)
            return
        self._agents[message.recipient].handle(message)

    # --------------------------------------------------------------- failure

    def kill_agent(self, name: str, at: float) -> None:
        """Schedule an agent crash: it stops processing and peers are told."""
        self.engine.at(
            at,
            lambda: self._kill(name),
            priority=-10,
            label=f"kill-{name}",
            shard=self._zone_of(self.agent(name).node_name),
        )

    def kill_now(self, name: str) -> None:
        """Immediate agent death (battery depletion, self-detected faults)."""
        self._kill(name)

    def _kill(self, name: str) -> None:
        if not self._alive.get(name, False):
            return
        self._alive[name] = False
        del self._alive_set[name]
        zone = self._agent_zone[name]
        self._zone_alive[zone].pop(name, None)
        epoch = self._zone_epoch[zone] + 1
        self._zone_epoch[zone] = epoch
        self._zone_changes[zone].append((epoch, name, False))
        self.deaths += 1
        agent = self._agents[name]
        agent.on_killed()
        if self.platform.has_node(agent.node_name):
            self.platform.fail_node(agent.node_name, at=self.engine.now)
        if self.notification == "broadcast":
            targets = [
                other for other in self._agents if self._alive.get(other, False)
            ]
        else:
            # Interest-scoped: only peers that exchanged messages with the
            # dead agent or watched it.  Their own interest sets drop the
            # dead entry so the sets stay bounded by *live* communication.
            interested = self._interest.pop(name, None) or {}
            interest = self._interest
            targets = []
            for other in interested:
                peers = interest.get(other)
                if peers is not None:
                    peers.pop(name, None)
                if self._alive.get(other, False):
                    targets.append(other)
        for other in targets:
            notice = Message(
                op=Op.AGENT_DOWN,
                sender=name,
                recipient=other,
                payload={"agent": name},
            )
            self.down_notices += 1
            # Failure detection latency: one control-message hop.
            self.engine.after(
                _DETECT_DELAY_S,
                lambda m=notice: self._deliver(m),
                label=f"detect-{name}",
                shard=self._zone_of(self._agents[other].node_name),
            )
