"""The message bus: in-process substitute for the agents' REST transport.

Delivery takes the virtual time the platform's network model charges for the
message's payload between the two agents' nodes.  The bus doubles as the
failure detector: killing an agent broadcasts ``AGENT_DOWN`` notices to the
survivors (a perfect failure detector — the strongest assumption, stated
explicitly in DESIGN.md's substitution table).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.agents.messages import Message, Op
from repro.core.exceptions import AgentError
from repro.infrastructure.platform import Platform
from repro.simulation.engine import SimulationEngine

if TYPE_CHECKING:
    from repro.agents.agent import Agent


def _no_zone(node_name: str) -> None:
    """Shard resolver for single-timeline engines: everything is unsharded."""
    return None


class MessageBus:
    """Registry + virtual-time delivery between agents."""

    def __init__(self, platform: Platform, engine: SimulationEngine) -> None:
        self.platform = platform
        self.engine = engine
        # Deliveries and kills are node-local: carry the node's zone so a
        # sharded engine files them on the zone's own timeline.  The message
        # delay already pays at least the zone link latency (payloads are
        # never free), which is exactly the cross-shard causality contract
        # lookahead mode enforces.
        if getattr(engine, "is_sharded", False):
            self._zone_of = platform.network.zone_of
        else:
            self._zone_of = _no_zone
        self._agents: Dict[str, "Agent"] = {}
        self._alive: Dict[str, bool] = {}
        self._services: Dict[str, str] = {}  # service name -> provider agent
        self.messages_sent = 0
        self.bytes_sent = 0.0
        self.dropped_messages: List[Message] = []

    def register(self, agent: "Agent") -> None:
        if agent.name in self._agents:
            raise AgentError(f"agent {agent.name!r} already registered")
        self._agents[agent.name] = agent
        self._alive[agent.name] = True

    def agent(self, name: str) -> "Agent":
        try:
            return self._agents[name]
        except KeyError:
            raise AgentError(f"unknown agent {name!r}") from None

    def is_alive(self, name: str) -> bool:
        return self._alive.get(name, False)

    @property
    def alive_agents(self) -> List[str]:
        return [name for name, alive in self._alive.items() if alive]

    def register_service(self, service_name: str, agent_name: str) -> None:
        """Record a service endpoint (the bus is also the service registry)."""
        if service_name in self._services:
            raise AgentError(f"service {service_name!r} already registered")
        self._services[service_name] = agent_name

    def find_service(self, service_name: str) -> Optional[str]:
        """Provider agent for a service, or None if unknown or dead."""
        provider = self._services.get(service_name)
        if provider is None or not self._alive.get(provider, False):
            return None
        return provider

    def send(self, message: Message) -> None:
        """Deliver a message after the network-model transfer time.

        Messages to dead agents are dropped (the sender learns about the
        death through the AGENT_DOWN broadcast, like a connection refusing).
        """
        if message.sender not in self._agents:
            raise AgentError(f"unknown sender {message.sender!r}")
        if message.recipient not in self._agents:
            raise AgentError(f"unknown recipient {message.recipient!r}")
        self.messages_sent += 1
        self.bytes_sent += message.payload_bytes
        src_node = self._agents[message.sender].node_name
        dst_node = self._agents[message.recipient].node_name
        delay = self.platform.network.transfer_time(
            src_node, dst_node, message.payload_bytes
        )
        self.engine.after(
            delay,
            lambda: self._deliver(message),
            label=f"deliver-{message.op.name}-{message.message_id}",
            shard=self._zone_of(dst_node),
        )

    def _deliver(self, message: Message) -> None:
        if not self._alive.get(message.recipient, False):
            self.dropped_messages.append(message)
            return
        if not self._alive.get(message.sender, False) and message.op is not Op.AGENT_DOWN:
            # Message from an agent that died while it was in flight still
            # arrives (it was already on the wire).
            pass
        self._agents[message.recipient].handle(message)

    def kill_agent(self, name: str, at: float) -> None:
        """Schedule an agent crash: it stops processing and peers are told."""
        self.engine.at(
            at,
            lambda: self._kill(name),
            priority=-10,
            label=f"kill-{name}",
            shard=self._zone_of(self.agent(name).node_name),
        )

    def kill_now(self, name: str) -> None:
        """Immediate agent death (battery depletion, self-detected faults)."""
        self._kill(name)

    def _kill(self, name: str) -> None:
        if not self._alive.get(name, False):
            return
        self._alive[name] = False
        agent = self._agents[name]
        agent.on_killed()
        if self.platform.has_node(agent.node_name):
            self.platform.fail_node(agent.node_name, at=self.engine.now)
        for other_name, other in self._agents.items():
            if other_name == name or not self._alive[other_name]:
                continue
            notice = Message(
                op=Op.AGENT_DOWN,
                sender=name,
                recipient=other_name,
                payload={"agent": name},
            )
            # Failure detection latency: one control-message hop.
            self.engine.after(
                0.1,
                lambda m=notice: self._deliver(m),
                label=f"detect-{name}",
                shard=self._zone_of(other.node_name),
            )
