"""COMPSs Agents: the fog-to-cloud runtime of §VI-B (DESIGN.md S11).

"The runtime is deployed as a microservice ... Each Agent is independent of
the other and can execute the same application code acting as a worker
whenever needed. ... the runtime interacts with a remote agent using the
same operation of the REST interface."  (§VI-B, Fig. 6)

The Docker/REST substitution (DESIGN.md §2) is an in-process
:class:`MessageBus` that delivers REST-shaped messages between
:class:`Agent` objects in virtual time, charging the platform's network
model for payload movement.  Agents orchestrate profiled task graphs,
offload tasks fog→cloud (and cloud→fog) under an
:class:`OffloadingPolicy`, persist task data through the storage runtime,
and recover work lost to agent failures from those persisted copies
(claims C5, E6, E7, E13).
"""

from repro.agents.messages import Message, Op
from repro.agents.bus import MessageBus
from repro.agents.offloading import (
    OffloadingPolicy,
    NeverOffload,
    AlwaysOffload,
    LoadThresholdOffload,
)
from repro.agents.agent import Agent, AgentReport
from repro.agents.services import ServiceSpec, publish_application_service

__all__ = [
    "ServiceSpec",
    "publish_application_service",
    "Message",
    "Op",
    "MessageBus",
    "OffloadingPolicy",
    "NeverOffload",
    "AlwaysOffload",
    "LoadThresholdOffload",
    "Agent",
    "AgentReport",
]
