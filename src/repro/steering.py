"""Computational steering: inspect partial results, redirect long runs.

The paper (§VI-C): storing partial results in HDA-friendly databases "allows
scientists to check partial results before their long-lasting simulations
end the execution. This checking enables to detect in early stages if the
simulation is not behaving as expected and should be steered".

:class:`SteeringMonitor` wires that loop onto the simulated executor: a
user-supplied inspector runs on every completed task (receiving the task
and a snapshot window of recent completions) and may return an action —
``CONTINUE``, ``ABORT`` (stop wasting the allocation), or a callable that
mutates upcoming work (e.g. re-parameterize pending tasks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

from repro.core.graph import TaskGraph, TaskInstance, TaskState
from repro.executor.simulated import SimulatedExecutor


class SteeringAction(enum.Enum):
    CONTINUE = "continue"
    ABORT = "abort"


#: An inspector sees the finished task plus the recent-completions window
#: and returns CONTINUE/ABORT or a callable applied to the graph (steering).
Inspector = Callable[[TaskInstance, List[TaskInstance]], Union[SteeringAction, Callable[[TaskGraph], None]]]


@dataclass
class SteeringReport:
    """What the monitor observed and did."""

    inspected: int = 0
    aborted: bool = False
    abort_time: Optional[float] = None
    abort_task: Optional[str] = None
    interventions: int = 0
    saved_task_count: int = 0


class SteeringMonitor:
    """Attaches partial-result inspection to a simulated execution."""

    def __init__(
        self,
        executor: SimulatedExecutor,
        inspector: Inspector,
        window: int = 16,
    ) -> None:
        self.executor = executor
        self.inspector = inspector
        self.window = window
        self.report = SteeringReport()
        self._recent: List[TaskInstance] = []
        self._install()

    def _install(self) -> None:
        original_complete = self.executor._complete_task

        def wrapped(task_id: int) -> None:
            graph = self.executor.graph
            instance = graph.task(task_id)
            original_complete(task_id)
            if self.report.aborted:
                # In-flight tasks may still complete and release successors;
                # sweep them so the abort actually drains the run.
                self._sweep()
                return
            if instance.state is not TaskState.DONE:
                return
            self._recent.append(instance)
            if len(self._recent) > self.window:
                self._recent.pop(0)
            self.report.inspected += 1
            outcome = self.inspector(instance, list(self._recent))
            if outcome is SteeringAction.ABORT:
                self._abort(instance)
            elif callable(outcome):
                self.report.interventions += 1
                outcome(graph)

        self.executor._complete_task = wrapped  # type: ignore[method-assign]

    def _abort(self, trigger: TaskInstance) -> None:
        graph = self.executor.graph
        engine = self.executor.engine
        self.report.aborted = True
        self.report.abort_time = engine.now
        self.report.abort_task = trigger.label
        remaining = [
            t
            for t in graph.tasks
            if t.state in (TaskState.PENDING, TaskState.READY)
            and not t.is_barrier
        ]
        self.report.saved_task_count = len(remaining)
        self._sweep()

    def _sweep(self) -> None:
        """Fail every READY task; PENDING ones cancel transitively or get
        swept once a completing ancestor promotes them to READY."""
        graph = self.executor.graph
        engine = self.executor.engine
        error = RuntimeError(
            f"steered abort after {self.report.abort_task or 'inspection'}"
        )
        for instance in list(graph.tasks):
            if instance.state is TaskState.READY:
                graph.mark_failed(instance.task_id, error, now=engine.now)
        if graph.finished:
            engine.stop()
