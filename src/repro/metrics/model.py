"""Workflow modelling: analytic structure metrics for task graphs.

The paper (§VI-C): "We also aim at doing theoretical research in workflow
modelling and in the definition of data-computing metrics. Once we have some
workflow modelling methodologies defined, this will be used to give feedback
on the solutions designed and in subsequent stages to drive runtime
decisions."

This module is that feedback loop's first stage: closed-form structure
metrics over a profiled DAG — total work, critical path (depth), average
parallelism, width profile, and the classic work/depth speedup bound

    T_p >= max(T_1 / p, T_inf)

which the E1 scaling bench can be checked against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.graph import TaskGraph, TaskInstance


def _duration(instance: TaskInstance) -> float:
    if instance.profile is not None:
        return instance.profile.duration_s
    if instance.duration is not None:
        return instance.duration
    return 0.0


@dataclass(frozen=True)
class WorkflowModel:
    """Analytic structure summary of one task graph."""

    task_count: int
    total_work_s: float          # T_1: serial execution time
    critical_path_s: float       # T_inf: minimum possible makespan
    average_parallelism: float   # T_1 / T_inf
    max_width: int               # widest antichain by level
    level_widths: List[int]      # tasks per dependency level

    def speedup_bound(self, cores: int) -> float:
        """Brent's bound on achievable speedup with ``cores`` workers."""
        if cores <= 0:
            raise ValueError("cores must be positive")
        if self.total_work_s == 0:
            return float(cores)
        lower_bound_makespan = max(self.total_work_s / cores, self.critical_path_s)
        return self.total_work_s / lower_bound_makespan

    def makespan_lower_bound(self, cores: int) -> float:
        """T_p >= max(T_1/p, T_inf): no schedule can beat this."""
        if cores <= 0:
            raise ValueError("cores must be positive")
        return max(self.total_work_s / cores, self.critical_path_s)


def analyze_graph(graph: TaskGraph) -> WorkflowModel:
    """Compute the :class:`WorkflowModel` of a (profiled) task graph."""
    total_work = sum(_duration(t) for t in graph.tasks)
    critical_path = graph.critical_path_length(_duration)

    # Level = longest hop-distance from any source; width = tasks per level.
    # Structural WAR barriers are zero-height pass-throughs: they inherit
    # their deepest predecessor's level without adding a hop (the collapsed
    # edges they stand for were direct) and are excluded from widths.
    level: Dict[int, int] = {}
    widths: Dict[int, int] = {}
    for instance in graph.tasks:  # insertion order is topological
        preds = graph.predecessors(instance.task_id)
        depth = max((level[p] for p in preds), default=-1)
        if not instance.is_barrier:
            depth += 1
            widths[depth] = widths.get(depth, 0) + 1
        level[instance.task_id] = max(depth, 0)
    level_widths = [widths[i] for i in sorted(widths)] if widths else []

    task_count = graph.task_count

    return WorkflowModel(
        task_count=task_count,
        total_work_s=total_work,
        critical_path_s=critical_path,
        average_parallelism=(
            total_work / critical_path if critical_path > 0 else float(task_count or 0)
        ),
        max_width=max(level_widths, default=0),
        level_widths=level_widths,
    )
