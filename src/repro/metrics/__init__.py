"""Tracing and data-computing metrics (DESIGN.md S15).

Covers the paper's §VI-C research directions that are concrete enough to
build: execution traces/utilization over task graphs, and the
"data-computing metrics ... to compute the trade-off between the cost of
storing data generated or re-computing them" (experiment E10).
"""

from repro.metrics.tracing import TaskTrace, TraceCollector, utilization
from repro.metrics.dot import graph_to_dot
from repro.metrics.data_metrics import (
    IntermediateDatum,
    StoreAllPolicy,
    RecomputeAllPolicy,
    CostModelPolicy,
    evaluate_policy,
)

__all__ = [
    "TaskTrace",
    "TraceCollector",
    "utilization",
    "graph_to_dot",
    "IntermediateDatum",
    "StoreAllPolicy",
    "RecomputeAllPolicy",
    "CostModelPolicy",
    "evaluate_policy",
]
