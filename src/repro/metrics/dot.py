"""Graphviz (DOT) export of task graphs.

COMPSs deployments visualize their workflow DAGs; this is the equivalent
observability hook.  The output is plain DOT text — render with
``dot -Tsvg`` if graphviz is installed, or read it as-is.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.graph import TaskGraph, TaskState

_STATE_COLORS: Dict[TaskState, str] = {
    TaskState.PENDING: "gray80",
    TaskState.READY: "khaki",
    TaskState.RUNNING: "lightblue",
    TaskState.DONE: "palegreen",
    TaskState.FAILED: "salmon",
    TaskState.CANCELLED: "gray50",
}


def graph_to_dot(
    graph: TaskGraph,
    name: str = "workflow",
    max_label_length: int = 32,
    group_by_node: bool = False,
) -> str:
    """Render a task graph as a DOT digraph string.

    Args:
        graph: the graph to render (any state; colors encode task states).
        name: the digraph's name.
        max_label_length: task labels longer than this are truncated.
        group_by_node: cluster tasks by the node that executed them.
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;", '  node [shape=box, style=filled];']

    def node_line(instance) -> str:
        label = instance.label
        if len(label) > max_label_length:
            label = label[: max_label_length - 1] + "…"
        color = _STATE_COLORS[instance.state]
        return (
            f'  t{instance.task_id} [label="{label}", fillcolor="{color}"];'
        )

    if group_by_node:
        by_node: Dict[Optional[str], list] = {}
        for instance in graph.tasks:
            by_node.setdefault(instance.assigned_node, []).append(instance)
        cluster = 0
        for node_name, instances in by_node.items():
            if node_name is None:
                for instance in instances:
                    lines.append(node_line(instance))
                continue
            lines.append(f"  subgraph cluster_{cluster} {{")
            lines.append(f'    label="{node_name}";')
            for instance in instances:
                lines.append("  " + node_line(instance))
            lines.append("  }")
            cluster += 1
    else:
        for instance in graph.tasks:
            lines.append(node_line(instance))

    for instance in graph.tasks:
        for pred in sorted(graph.predecessors(instance.task_id)):
            lines.append(f"  t{pred} -> t{instance.task_id};")
    lines.append("}")
    return "\n".join(lines)
