"""Execution traces over task graphs.

Both backends stamp start/end times onto :class:`TaskInstance`; this module
turns a finished graph into per-node interval traces (Gantt rows), resource
utilization numbers and simple summaries — the observability layer a COMPSs
deployment gets from Paraver traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.graph import TaskGraph, TaskInstance, TaskState


@dataclass(frozen=True)
class TaskTrace:
    """One completed task's trace row."""

    task_id: int
    label: str
    node: str
    start: float
    end: float
    cores: int

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceCollector:
    """Extracts trace rows and summaries from a finished graph."""

    def __init__(self, graph: TaskGraph) -> None:
        self.graph = graph

    def rows(self) -> List[TaskTrace]:
        rows: List[TaskTrace] = []
        for instance in self.graph.tasks:
            if instance.state is not TaskState.DONE:
                continue
            if instance.start_time is None or instance.end_time is None:
                continue
            for node in instance.assigned_nodes or [instance.assigned_node or "?"]:
                rows.append(
                    TaskTrace(
                        task_id=instance.task_id,
                        label=instance.label,
                        node=node,
                        start=instance.start_time,
                        end=instance.end_time,
                        cores=instance.requirements.cores,
                    )
                )
        return rows

    def makespan(self) -> float:
        ends = [t.end_time for t in self.graph.tasks if t.end_time is not None]
        return max(ends, default=0.0)

    def rows_by_node(self) -> Dict[str, List[TaskTrace]]:
        by_node: Dict[str, List[TaskTrace]] = {}
        for row in self.rows():
            by_node.setdefault(row.node, []).append(row)
        for rows in by_node.values():
            rows.sort(key=lambda r: r.start)
        return by_node

    def summary(self) -> Dict[str, float]:
        rows = self.rows()
        makespan = self.makespan()
        busy = sum(r.duration * r.cores for r in rows)
        return {
            "tasks": float(len(rows)),
            "makespan": makespan,
            "busy_core_seconds": busy,
            "mean_task_duration": (
                sum(r.duration for r in rows) / len(rows) if rows else 0.0
            ),
        }


def utilization(graph: TaskGraph, total_cores: int, makespan: Optional[float] = None) -> float:
    """Fraction of available core-time spent executing tasks.

    The scalability experiments (E1) report this alongside speedup: good
    scalability == utilization stays high as nodes are added.
    """
    if total_cores <= 0:
        raise ValueError("total_cores must be positive")
    collector = TraceCollector(graph)
    horizon = makespan if makespan is not None else collector.makespan()
    if horizon <= 0:
        return 0.0
    busy = sum(r.duration * r.cores for r in collector.rows())
    return min(1.0, busy / (total_cores * horizon))
