"""Data-computing metrics: the store-vs-recompute trade-off (§VI-C, E10).

"The data-computing metrics will be used to compute the trade-off between
the cost of storing data generated or re-computing them. While storing
results has been since now the followed approach, the project will propose
new unconventional strategies to reduce cost of storage and optimize
computing."

Model: an intermediate datum has a (re)computation cost, a size, a storage
medium with write/read bandwidth, and an expected number of future accesses.
A policy decides per datum whether to *store* it (pay one write, then reads)
or *discard* it (pay a recomputation per access).  ``evaluate_policy`` totals
the time each strategy costs over a workload of accesses, which is what the
E10 bench sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Protocol


@dataclass(frozen=True)
class IntermediateDatum:
    """One lineage-tracked intermediate result."""

    name: str
    compute_cost_s: float
    size_bytes: float
    accesses: int

    def __post_init__(self) -> None:
        if self.compute_cost_s < 0:
            raise ValueError("compute_cost_s must be >= 0")
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        if self.accesses < 0:
            raise ValueError("accesses must be >= 0")


@dataclass(frozen=True)
class StorageMedium:
    """Bandwidths of the storage tier holding stored intermediates."""

    write_bps: float = 1e9  # ~1 GB/s parallel filesystem
    read_bps: float = 2e9

    def write_time(self, size_bytes: float) -> float:
        return size_bytes / self.write_bps

    def read_time(self, size_bytes: float) -> float:
        return size_bytes / self.read_bps


class DataPolicy(Protocol):
    """Decides whether a datum is stored after first computation."""

    name: str

    def should_store(self, datum: IntermediateDatum, medium: StorageMedium) -> bool:
        ...


class StoreAllPolicy:
    """The conventional approach the paper says everyone follows."""

    name = "store-all"

    def should_store(self, datum: IntermediateDatum, medium: StorageMedium) -> bool:
        return True


class RecomputeAllPolicy:
    """The opposite extreme: never store, always regenerate."""

    name = "recompute-all"

    def should_store(self, datum: IntermediateDatum, medium: StorageMedium) -> bool:
        return False


class CostModelPolicy:
    """The paper's proposed metric-driven strategy.

    Store iff the storage path is cheaper over the datum's lifetime:

        write + accesses * read   <   accesses * recompute
    """

    name = "cost-model"

    def should_store(self, datum: IntermediateDatum, medium: StorageMedium) -> bool:
        store_cost = medium.write_time(datum.size_bytes) + datum.accesses * medium.read_time(
            datum.size_bytes
        )
        recompute_cost = datum.accesses * datum.compute_cost_s
        return store_cost < recompute_cost


@dataclass
class PolicyEvaluation:
    """Totals for one policy over a workload."""

    policy_name: str
    total_time_s: float
    stored_bytes: float
    recomputations: int

    def __str__(self) -> str:
        return (
            f"{self.policy_name}: time={self.total_time_s:.1f}s "
            f"stored={self.stored_bytes / 1e9:.2f}GB "
            f"recomputations={self.recomputations}"
        )


def evaluate_policy(
    policy: DataPolicy,
    data: Iterable[IntermediateDatum],
    medium: StorageMedium = StorageMedium(),
) -> PolicyEvaluation:
    """Total time/storage a policy costs for a set of intermediates.

    Every datum is computed once regardless (its first materialization);
    the policy only controls what later accesses cost.
    """
    total = 0.0
    stored_bytes = 0.0
    recomputations = 0
    for datum in data:
        total += datum.compute_cost_s  # first materialization
        if policy.should_store(datum, medium):
            total += medium.write_time(datum.size_bytes)
            total += datum.accesses * medium.read_time(datum.size_bytes)
            stored_bytes += datum.size_bytes
        else:
            total += datum.accesses * datum.compute_cost_s
            recomputations += datum.accesses
    return PolicyEvaluation(
        policy_name=policy.name,
        total_time_s=total,
        stored_bytes=stored_bytes,
        recomputations=recomputations,
    )
