"""Paraver-flavoured trace export.

BSC analyses COMPSs executions with Paraver; this module writes the same
information from our graphs in two interchange forms:

* a ``.prv``-like record stream (``state`` records per task occupancy:
  ``1:<node>:<task_id>:<start_us>:<end_us>:<label>``) plus a row file
  mapping node ids to names;
* plain CSV for spreadsheet/pandas analysis.

Only completed tasks appear; both exports are deterministic and round-trip
through :func:`load_trace_csv` for testing.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Tuple

from repro.core.graph import TaskGraph
from repro.metrics.tracing import TaskTrace, TraceCollector


def export_prv(graph: TaskGraph) -> Tuple[str, str]:
    """Return (prv_body, row_file) strings for a finished graph."""
    collector = TraceCollector(graph)
    rows = collector.rows()
    node_ids: Dict[str, int] = {}
    for row in rows:
        node_ids.setdefault(row.node, len(node_ids) + 1)
    header = (
        f"#Paraver-like trace: tasks={len(rows)} "
        f"nodes={len(node_ids)} makespan_us={int(collector.makespan() * 1e6)}"
    )
    lines = [header]
    for row in sorted(rows, key=lambda r: (r.start, r.task_id)):
        lines.append(
            f"1:{node_ids[row.node]}:{row.task_id}:"
            f"{int(row.start * 1e6)}:{int(row.end * 1e6)}:{row.label}"
        )
    row_lines = [f"LEVEL NODE SIZE {len(node_ids)}"]
    for name, node_id in sorted(node_ids.items(), key=lambda kv: kv[1]):
        row_lines.append(f"{node_id} {name}")
    return "\n".join(lines), "\n".join(row_lines)


CSV_FIELDS = ["task_id", "label", "node", "start", "end", "cores"]


def export_trace_csv(graph: TaskGraph) -> str:
    """CSV dump of every completed task's trace row."""
    collector = TraceCollector(graph)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for row in sorted(collector.rows(), key=lambda r: (r.start, r.task_id)):
        writer.writerow(
            {
                "task_id": row.task_id,
                "label": row.label,
                "node": row.node,
                "start": f"{row.start:.6f}",
                "end": f"{row.end:.6f}",
                "cores": row.cores,
            }
        )
    return buffer.getvalue()


def load_trace_csv(text: str) -> List[TaskTrace]:
    """Parse :func:`export_trace_csv` output back into trace rows."""
    reader = csv.DictReader(io.StringIO(text))
    rows: List[TaskTrace] = []
    for record in reader:
        rows.append(
            TaskTrace(
                task_id=int(record["task_id"]),
                label=record["label"],
                node=record["node"],
                start=float(record["start"]),
                end=float(record["end"]),
                cores=int(record["cores"]),
            )
        )
    return rows
