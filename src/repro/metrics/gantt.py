"""ASCII Gantt rendering of execution traces.

A terminal-friendly view of where time went: one row per node, one glyph
per time bucket, '█'-shaded by how busy the node was in that bucket.  Used
by the CLI's ``timeline`` command and handy in notebooks/tests.
"""

from __future__ import annotations

from typing import List

from repro.core.graph import TaskGraph
from repro.metrics.tracing import TraceCollector

_SHADES = " ░▒▓█"


def render_gantt(graph: TaskGraph, width: int = 72, label_width: int = 18) -> str:
    """Render a finished graph's schedule as an ASCII Gantt chart.

    Each row is a node; each column is ``makespan / width`` seconds; the
    glyph encodes the node's core-occupancy fraction in that bucket
    relative to its own peak (darker = busier).
    """
    if width < 8:
        raise ValueError("width must be >= 8")
    collector = TraceCollector(graph)
    makespan = collector.makespan()
    by_node = collector.rows_by_node()
    if makespan <= 0 or not by_node:
        return "(empty trace)"
    bucket_s = makespan / width
    lines: List[str] = [
        f"{'node':<{label_width}} |{'time →'.ljust(width)}| 0..{makespan:.0f}s"
    ]
    for node_name in sorted(by_node):
        occupancy = [0.0] * width
        for row in by_node[node_name]:
            first = min(width - 1, int(row.start / bucket_s))
            last = min(width - 1, int(max(row.start, row.end - 1e-9) / bucket_s))
            for bucket in range(first, last + 1):
                bucket_start = bucket * bucket_s
                bucket_end = bucket_start + bucket_s
                overlap = min(row.end, bucket_end) - max(row.start, bucket_start)
                if overlap > 0:
                    occupancy[bucket] += row.cores * overlap / bucket_s
        peak = max(occupancy) or 1.0
        glyphs = "".join(
            _SHADES[min(len(_SHADES) - 1, int(round(v / peak * (len(_SHADES) - 1))))]
            for v in occupancy
        )
        display = node_name if len(node_name) <= label_width else node_name[: label_width - 1] + "…"
        lines.append(f"{display:<{label_width}} |{glyphs}|")
    return "\n".join(lines)
