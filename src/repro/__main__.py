"""``python -m repro`` entry point."""

from repro.tools.cli import main

raise SystemExit(main())
