"""Fleet-scale continuum churn: ~50k agents under sustained failure/recovery.

The paper's mF2C scenario (§VI-B) assumes a compute continuum of tens of
thousands of edge devices that join, fail, and migrate constantly.  This
workload models that churn directly:

* **arrival/departure processes** — every zone kills and spawns a seeded
  fraction of its worker fleet per second (``churn_per_s``), with
  fractional-quota debt so low rates still churn;
* **correlated zone outages** — at ``outage_at_s`` a configurable fraction
  of one zone dies in a single tick (the flash-outage stressor);
* **flash crowds** — each zone's orchestrator periodically submits a
  two-layer produce/consume application offloaded over churning peers, so
  deaths hit in-flight tasks and produced data, exercising requeue,
  persistence recovery, and application failure;
* **recovery storms** — every death re-homes the dead node's persisted
  objects to the zone store in one :meth:`DataLocationService.rehome_node`
  pass (O(data held), not one round-trip per datum).

Peer selection never scans the fleet: each zone driver keeps a candidate
pool reconciled lazily against the bus's per-zone membership-epoch digest
(:meth:`MessageBus.changes_since`), folding in only the deltas since its
cached epoch — the consumer half of interest-scoped failure notification.

Two execution shapes share one per-zone driver:

* **fleet mode** (:func:`run_churn_fleet`) — one shared bus over a
  multi-zone platform, on the ``single`` or coupled ``sharded`` engine.
  This is the 50k-agent benchmark path, and where the ``interest`` vs
  ``broadcast`` notification models are compared like-for-like.
* **decomposed mode** (:func:`run_churn`) — ``{zone: factory}`` programs
  (one platform+bus per zone, epoch digests exchanged on a cross-zone
  ring), runnable on all three engines including forked parallel lanes,
  byte-identical across them.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.agents.agent import Agent
from repro.agents.bus import MessageBus
from repro.agents.offloading import AlwaysOffload
from repro.executor.workflow_builder import SimWorkflowBuilder
from repro.infrastructure.network import Link, NetworkTopology
from repro.infrastructure.platform import Platform
from repro.infrastructure.resources import Node, NodeKind, PowerProfile
from repro.scheduling.locations import DataLocationService
from repro.simulation.random import DeterministicRandom
from repro.workloads.zonal import zone_name

#: One shared power model for the whole worker fleet (50k per-node profile
#: objects would be pure overhead).
_WORKER_POWER = PowerProfile(idle_watts=2.0, busy_watts_per_core=3.0)
_SERVER_POWER = PowerProfile(idle_watts=80.0, busy_watts_per_core=8.0)


@dataclass(frozen=True)
class ChurnConfig:
    """One churn campaign over a zoned continuum fleet."""

    #: Total worker agents across all zones.
    agents: int = 2000
    zones: int = 4
    #: Fraction of the live fleet that dies — and arrives — per second.
    churn_per_s: float = 0.01
    duration_s: float = 20.0
    tick_s: float = 1.0
    #: Flash-crowd size scales with the fleet (tasks per crowd per 1000
    #: zone agents, floor 4) so useful work grows with fleet size and
    #: per-event cost is comparable across scales.
    crowd_tasks_per_k: float = 10.0
    crowd_interval_s: float = 5.0
    task_duration_s: float = 0.2
    peers_per_crowd: int = 8
    #: Fraction of each tick's deaths drawn from the zone's *active* crowd
    #: peers (busy devices fail more: battery drain, heat).  This is what
    #: makes churn collide with in-flight tasks and produced data — the
    #: requeue / persistence-recovery / app-failure paths — instead of
    #: only ever hitting idle bystanders.
    peer_death_bias: float = 0.3
    datum_bytes: float = 1e4
    #: Correlated outage: at this time, ``outage_fraction`` of
    #: ``outage_zone`` dies at once (None disables it).
    outage_at_s: Optional[float] = None
    outage_zone: int = 0
    outage_fraction: float = 0.5
    #: WAN latency between zones — the lookahead horizon in decomposed mode.
    inter_zone_latency_s: float = 1.0
    #: Cross-zone epoch-digest ring period (decomposed mode).
    digest_interval_s: float = 5.0
    persistence: bool = True
    notification: str = "interest"
    seed: int = 42


def _crowd_tasks(cfg: ChurnConfig, zone_agents: int) -> int:
    return max(4, int(cfg.crowd_tasks_per_k * zone_agents / 1000.0))


def zone_agent_count(cfg: ChurnConfig, index: int) -> int:
    """Workers initially assigned to zone ``index`` (remainder to zone 0)."""
    base = cfg.agents // cfg.zones
    return base + (cfg.agents % cfg.zones if index == 0 else 0)


def _worker_node(name: str) -> Node:
    return Node(
        name=name,
        kind=NodeKind.FOG,
        cores=4,
        memory_mb=4_000,
        speed_factor=0.5,
        power=_WORKER_POWER,
    )


def _server_node(name: str, cores: int = 8) -> Node:
    return Node(
        name=name,
        kind=NodeKind.CLOUD,
        cores=cores,
        memory_mb=32_000,
        speed_factor=1.0,
        power=_SERVER_POWER,
    )


class _ZoneChurnDriver:
    """One zone's churn process: fleet, orchestrator, ticks, crowds.

    The same driver runs in fleet mode (shared platform/bus/engine) and in
    decomposed mode (zone-local platform/bus over a ``ShardApi``) — every
    engine interaction goes through the ``engine`` facade it was given.
    """

    def __init__(
        self,
        cfg: ChurnConfig,
        index: int,
        platform: Platform,
        bus: MessageBus,
        engine: Any,
    ) -> None:
        self.cfg = cfg
        self.index = index
        self.zone = zone_name(index)
        self.platform = platform
        self.bus = bus
        self.engine = engine
        self._shard = self.zone if getattr(engine, "is_sharded", False) else None
        self.rng = DeterministicRandom(cfg.seed, "churn").fork(f"zone:{index}")
        self.locations = DataLocationService()
        self.store_node = f"{self.zone}-store"
        self.orch_name = f"{self.zone}-orch"

        # Candidate pool: zone workers believed alive, reconciled lazily
        # against the bus's membership-epoch digest (insertion-ordered).
        self._candidates: Dict[str, None] = {}
        self._epoch = 0
        self._death_debt = 0.0
        self._arrival_debt = 0.0
        self._next_arrival = 0
        self._app_seq = 0
        self._recovered_seen = 0
        self._outage_done = cfg.outage_at_s is None or index != cfg.outage_zone

        # Outcome counters (all seed-deterministic).
        self.deaths = 0
        self.arrivals = 0
        self.outage_killed = 0
        self.apps_completed = 0
        self.apps_failed = 0
        self.crowds_skipped = 0
        self.tasks_done = 0
        self.tasks_recovered = 0
        self.tasks_lost = 0
        self.data_rehomed = 0
        self.epoch_resyncs = 0

        self._build_zone()

    # ------------------------------------------------------------- topology

    def _build_zone(self) -> None:
        cfg = self.cfg
        store = self.store_node if cfg.persistence else None
        self.platform.add_node(_server_node(f"{self.zone}-orch-node"), zone=self.zone)
        if cfg.persistence:
            self.platform.add_node(_server_node(self.store_node), zone=self.zone)
        self.orch = Agent(
            self.orch_name,
            f"{self.zone}-orch-node",
            self.bus,
            persistence_store_node=store,
        )
        for i in range(zone_agent_count(cfg, self.index)):
            name = f"{self.zone}-w{i}"
            self.platform.add_node(_worker_node(name), zone=self.zone)
            Agent(name, name, self.bus, persistence_store_node=store)
            self._candidates[name] = None
        self._epoch = self.bus.membership_epoch(self.zone)

    def _is_worker(self, agent_name: str) -> bool:
        return agent_name != self.orch_name

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        cfg = self.cfg
        self.engine.after(
            cfg.tick_s, self._tick, label=f"{self.zone}-churn-tick", shard=self._shard
        )
        self.engine.after(
            cfg.crowd_interval_s,
            self._crowd,
            label=f"{self.zone}-crowd",
            shard=self._shard,
        )

    # -------------------------------------------------------- reconciliation

    def _reconcile(self) -> Dict[str, None]:
        """Fold membership deltas since the cached epoch into the pool.

        O(changes since last look), with a full O(zone) resync only when
        the bounded change log has been outrun (``changes_since`` -> None).
        """
        bus, zone = self.bus, self.zone
        epoch = bus.membership_epoch(zone)
        if epoch != self._epoch:
            changes = bus.changes_since(zone, self._epoch)
            if changes is None:
                self.epoch_resyncs += 1
                self._candidates = {
                    name: None
                    for name in bus.alive_in_zone(zone)
                    if self._is_worker(name)
                }
            else:
                pool = self._candidates
                for name, alive in changes:
                    if not self._is_worker(name):
                        continue
                    if alive:
                        pool[name] = None
                    else:
                        pool.pop(name, None)
            self._epoch = epoch
        return self._candidates

    # ----------------------------------------------------------- churn tick

    def _tick(self) -> None:
        cfg = self.cfg
        now = self.engine.now
        pool = self._reconcile()
        quota = cfg.churn_per_s * len(pool) * cfg.tick_s
        self._death_debt += quota
        kills = int(self._death_debt)
        self._death_debt -= kills
        if kills:
            orch = self.orch
            snapshot = list(pool)
            for _ in range(kills):
                if (
                    self.rng.random() < cfg.peer_death_bias
                    and orch.graph is not None
                    and not orch.graph.finished
                    and orch._peers
                ):
                    victim = self.rng.choice(list(orch._peers))
                elif snapshot:
                    # Swap-remove keeps victim picking O(1) per death no
                    # matter how wide the zone is.
                    i = self.rng.randint(0, len(snapshot) - 1)
                    victim = snapshot[i]
                    snapshot[i] = snapshot[-1]
                    snapshot.pop()
                else:
                    break
                self._kill_worker(victim)
        self._arrival_debt += quota
        births = int(self._arrival_debt)
        self._arrival_debt -= births
        for _ in range(births):
            self._spawn_worker()
        if not self._outage_done and now >= (cfg.outage_at_s or 0.0):
            self._outage_done = True
            self._correlated_outage()
        if now + cfg.tick_s <= cfg.duration_s + 1e-9:
            self.engine.after(
                cfg.tick_s,
                self._tick,
                label=f"{self.zone}-churn-tick",
                shard=self._shard,
            )

    def _kill_worker(self, victim: str) -> None:
        if not self.bus.is_alive(victim):
            return
        node = self.bus.agent(victim).node_name
        self.bus.kill_now(victim)
        self.deaths += 1
        self._candidates.pop(victim, None)
        # Recovery storm: every persisted object the dead node held re-homes
        # to the zone store in one batched pass.
        self.data_rehomed += self.locations.rehome_node(node, self.store_node)

    def _spawn_worker(self) -> None:
        name = f"{self.zone}-n{self._next_arrival}"
        self._next_arrival += 1
        self.platform.add_node(_worker_node(name), zone=self.zone)
        Agent(
            name,
            name,
            self.bus,
            persistence_store_node=self.store_node if self.cfg.persistence else None,
        )
        self.arrivals += 1
        self._candidates[name] = None

    def _correlated_outage(self) -> None:
        pool = list(self._candidates)
        count = int(len(pool) * self.cfg.outage_fraction)
        self.rng.shuffle(pool)
        for victim in pool[:count]:
            self._kill_worker(victim)
            self.outage_killed += 1

    # ---------------------------------------------------------- flash crowds

    def _crowd(self) -> None:
        cfg = self.cfg
        orch = self.orch
        if orch.graph is not None:
            if orch.graph.finished or orch.app_failed:
                self._harvest()
            else:
                self.crowds_skipped += 1
                self._schedule_next_crowd()
                return
        pool = list(self._reconcile())
        if pool:
            self.rng.shuffle(pool)
            peers = pool[: min(cfg.peers_per_crowd, len(pool))]
            builder = self._build_crowd_graph(len(self._candidates))
            orch.start_application(
                builder.graph, policy=AlwaysOffload(), peers=peers
            )
        self._schedule_next_crowd()

    def _schedule_next_crowd(self) -> None:
        cfg = self.cfg
        if self.engine.now + cfg.crowd_interval_s <= cfg.duration_s + 1e-9:
            self.engine.after(
                cfg.crowd_interval_s,
                self._crowd,
                label=f"{self.zone}-crowd",
                shard=self._shard,
            )

    def _build_crowd_graph(self, zone_agents: int) -> SimWorkflowBuilder:
        cfg = self.cfg
        app = self._app_seq
        self._app_seq += 1
        tasks = _crowd_tasks(cfg, zone_agents)
        builder = SimWorkflowBuilder()
        # Two layers: producers emit data, consumers read it — so a death
        # between the layers loses data (app failure without persistence,
        # recovery with it), not just in-flight compute.
        for i in range(tasks):
            builder.add_task(
                f"{self.zone}-a{app}-p{i}",
                duration=cfg.task_duration_s,
                outputs={f"{self.zone}-a{app}-o{i}": cfg.datum_bytes},
            )
        for i in range(tasks):
            builder.add_task(
                f"{self.zone}-a{app}-c{i}",
                duration=cfg.task_duration_s,
                inputs=[f"{self.zone}-a{app}-o{i}"],
            )
        return builder

    def _harvest(self) -> None:
        """Account a finished/failed application and reset the orchestrator."""
        orch = self.orch
        graph = orch.graph
        assert graph is not None
        done = graph.completed_count
        self.tasks_done += done
        recovered = orch.tasks_recovered - self._recovered_seen
        self._recovered_seen = orch.tasks_recovered
        self.tasks_recovered += recovered
        if orch.app_failed:
            self.apps_failed += 1
            self.tasks_lost += graph.task_count - done
        else:
            self.apps_completed += 1
        # Publish completed outputs into the persisted-object catalogue at
        # their current home (the store stands in for homes that died) so
        # later deaths trigger real re-homing storms.
        for datum, home in orch._datum_home.items():
            size = orch._datum_size.get(datum, 0.0)
            if self.bus.is_alive(home):
                node = self.bus.agent(home).node_name
            else:
                node = self.store_node
            self.locations.publish(datum, node, size_bytes=size)
        orch.reset_orchestration()
        orch._datum_home.clear()
        orch._datum_size.clear()
        orch._datum_persisted.clear()
        orch._home_index.clear()

    # --------------------------------------------------------------- results

    def finalize(self) -> None:
        """Harvest any application still open at quiescence."""
        if self.orch.graph is not None and (
            self.orch.graph.finished or self.orch.app_failed
        ):
            self._harvest()
        self._reconcile()

    def result(self) -> Dict[str, Any]:
        recovered, lost = self.tasks_recovered, self.tasks_lost
        fields = {
            "zone": self.zone,
            "deaths": self.deaths,
            "arrivals": self.arrivals,
            "outage_killed": self.outage_killed,
            "apps_completed": self.apps_completed,
            "apps_failed": self.apps_failed,
            "crowds_skipped": self.crowds_skipped,
            "tasks_done": self.tasks_done,
            "tasks_recovered": recovered,
            "tasks_lost": lost,
            "data_rehomed": self.data_rehomed,
            "epoch_resyncs": self.epoch_resyncs,
            "alive_workers": len(self._candidates),
            "final_epoch": self.bus.membership_epoch(self.zone),
            "recovered_work_fraction": recovered / max(1, recovered + lost),
        }
        fields["outcome_crc32"] = zlib.crc32(
            pickle.dumps(sorted(fields.items()))
        )
        return fields


# --------------------------------------------------------------- fleet mode


def make_continuum_platform(cfg: ChurnConfig) -> Platform:
    """One shared multi-zone platform (fleet mode): WiFi-class zones over a
    WAN whose latency is the inter-zone floor."""
    network = NetworkTopology(
        intra_zone_link=Link(latency_s=2e-3, bandwidth_bps=100e6 / 8),
        default_link=Link(latency_s=cfg.inter_zone_latency_s, bandwidth_bps=1e9 / 8),
    )
    return Platform(name="continuum", network=network)


def run_churn_fleet(
    cfg: ChurnConfig,
    engine: str = "single",
    notification: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the whole fleet on ONE bus: the 50k-agent benchmark path.

    ``engine``: ``single`` or ``sharded`` (coupled mode — byte-identical to
    single; one bus cannot span forked lanes, use :func:`run_churn` for the
    parallel engine).  ``notification`` overrides the config's model —
    ``broadcast`` is the pre-optimization reference.
    """
    from repro.simulation.engine import SimulationEngine
    from repro.simulation.sharded import ShardedSimulationEngine

    platform = make_continuum_platform(cfg)
    if engine == "single":
        eng: Any = SimulationEngine()
    elif engine == "sharded":
        eng = ShardedSimulationEngine(network=platform.network, mode="coupled")
    else:
        raise ValueError(
            f"fleet mode runs on 'single' or 'sharded' (got {engine!r}); "
            "the forked-lane engine needs the decomposed run_churn()"
        )
    bus = MessageBus(platform, eng, notification=notification or cfg.notification)
    drivers = [
        _ZoneChurnDriver(cfg, index, platform, bus, eng)
        for index in range(cfg.zones)
    ]
    for driver in drivers:
        driver.start()
    eng.run()
    for driver in drivers:
        driver.finalize()
    per_zone = {driver.zone: driver.result() for driver in drivers}
    recovered = sum(z["tasks_recovered"] for z in per_zone.values())
    lost = sum(z["tasks_lost"] for z in per_zone.values())
    events = eng.dispatched_events
    return {
        "workload": "churn",
        "mode": "fleet",
        "engine": engine,
        "notification": bus.notification,
        "agents": cfg.agents,
        "zones": cfg.zones,
        "churn_per_s": cfg.churn_per_s,
        "duration_s": cfg.duration_s,
        "deaths": sum(z["deaths"] for z in per_zone.values()),
        "arrivals": sum(z["arrivals"] for z in per_zone.values()),
        "apps_completed": sum(z["apps_completed"] for z in per_zone.values()),
        "apps_failed": sum(z["apps_failed"] for z in per_zone.values()),
        "tasks_done": sum(z["tasks_done"] for z in per_zone.values()),
        "tasks_recovered": recovered,
        "tasks_lost": lost,
        "data_rehomed": sum(z["data_rehomed"] for z in per_zone.values()),
        "recovered_work_fraction": recovered / max(1, recovered + lost),
        "events": events,
        "down_notices": bus.down_notices,
        "useful_events": events - bus.down_notices,
        "messages_sent": bus.messages_sent,
        "dropped": bus.dropped_count,
        "alive_agents": bus.alive_count,
        "per_zone": per_zone,
    }


# ---------------------------------------------------------- decomposed mode


def make_churn_network(cfg: ChurnConfig) -> NetworkTopology:
    """Inter-zone topology for decomposed mode: one gateway per zone."""
    network = NetworkTopology(
        intra_zone_link=Link(latency_s=1e-4, bandwidth_bps=10e9 / 8),
        default_link=Link(latency_s=cfg.inter_zone_latency_s, bandwidth_bps=1e9 / 8),
    )
    for index in range(cfg.zones):
        network.add_node(f"{zone_name(index)}-gw", zone_name(index))
    return network


def _zone_platform(cfg: ChurnConfig, index: int) -> Platform:
    network = NetworkTopology(
        intra_zone_link=Link(latency_s=2e-3, bandwidth_bps=100e6 / 8),
        default_link=Link(latency_s=2e-3, bandwidth_bps=100e6 / 8),
    )
    return Platform(name=f"continuum-{zone_name(index)}", network=network)


def _churn_zone_factory(cfg: ChurnConfig, index: int):
    """One zone's program: local fleet + churn driver + epoch-digest ring.

    The factory closes over plain config only, so fork lanes inherit it
    cheaply and nothing but channel messages is pickled.
    """

    def factory(api) -> Any:
        zone = zone_name(index)
        platform = _zone_platform(cfg, index)
        bus = MessageBus(platform, api, notification=cfg.notification)
        driver = _ZoneChurnDriver(cfg, index, platform, bus, api)
        driver.start()
        peer = zone_name((index + 1) % cfg.zones)

        def on_digest(payload: Dict[str, Any]) -> None:
            api.log(("peer-epoch", payload["zone"], payload["epoch"], payload["crc"]))

        api.on_message(on_digest)

        def ping() -> None:
            # The zone's membership digest crosses the WAN: what a remote
            # observer would reconcile against instead of a full sync.
            epoch = bus.membership_epoch(zone)
            crc = zlib.crc32(
                pickle.dumps((zone, epoch, driver.deaths, driver.arrivals))
            )
            api.send(
                peer,
                {"zone": zone, "epoch": epoch, "crc": crc},
                delay=cfg.inter_zone_latency_s,
                label="epoch-digest",
            )
            if api.now + cfg.digest_interval_s <= cfg.duration_s + 1e-9:
                api.after(cfg.digest_interval_s, ping, label="digest-tick")

        if cfg.zones > 1:
            api.after(cfg.digest_interval_s, ping, label="digest-tick")

        def result() -> Dict[str, Any]:
            driver.finalize()
            out = driver.result()
            out["events"] = api.dispatched_events
            out["down_notices"] = bus.down_notices
            out["dropped"] = bus.dropped_count
            return out

        return result

    return factory


def make_churn_programs(cfg: ChurnConfig) -> Dict[str, Any]:
    """``{zone: factory}`` churn programs for the sharded/parallel engines."""
    return {zone_name(i): _churn_zone_factory(cfg, i) for i in range(cfg.zones)}


def run_churn(
    cfg: ChurnConfig, engine: str = "single", workers: int = 2
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Run the decomposed campaign on the chosen engine: (result, stats).

    Same programs on ``single`` (inline lane), ``sharded`` (sequential
    lookahead reference), or ``parallel`` (forked lanes) — byte-identical
    deterministic results on all three.
    """
    from repro.simulation.parallel import (
        ParallelShardedSimulationEngine,
        run_programs_sharded,
    )

    network = make_churn_network(cfg)
    programs = make_churn_programs(cfg)
    stats: Dict[str, Any] = {}
    if engine == "sharded":
        out = run_programs_sharded(network, programs)
        per_zone = out["results"]
        dispatched = sum(out["shard_dispatch_counts"].values())
    elif engine in ("single", "parallel"):
        sim = ParallelShardedSimulationEngine(
            network, programs, workers=1 if engine == "single" else workers
        )
        sim.run()
        per_zone = sim.results
        dispatched = sim.dispatched_events
        stats = sim.stats
    else:
        raise ValueError(f"unknown engine {engine!r} (single, sharded, parallel)")
    ordered = {zone: per_zone[zone] for zone in sorted(per_zone)}
    recovered = sum(z["tasks_recovered"] for z in ordered.values())
    lost = sum(z["tasks_lost"] for z in ordered.values())
    result = {
        "workload": "churn",
        "mode": "decomposed",
        "notification": cfg.notification,
        "agents": cfg.agents,
        "zones": cfg.zones,
        "churn_per_s": cfg.churn_per_s,
        "duration_s": cfg.duration_s,
        "deaths": sum(z["deaths"] for z in ordered.values()),
        "arrivals": sum(z["arrivals"] for z in ordered.values()),
        "apps_completed": sum(z["apps_completed"] for z in ordered.values()),
        "apps_failed": sum(z["apps_failed"] for z in ordered.values()),
        "tasks_done": sum(z["tasks_done"] for z in ordered.values()),
        "tasks_recovered": recovered,
        "tasks_lost": lost,
        "data_rehomed": sum(z["data_rehomed"] for z in ordered.values()),
        "recovered_work_fraction": recovered / max(1, recovered + lost),
        "events": dispatched,
        "down_notices": sum(z["down_notices"] for z in ordered.values()),
        "per_zone": ordered,
    }
    return result, stats
