"""Synthetic GUIDANCE: the GWAS case study of §VI-A (claims C1, C2).

The real application: "For a whole genome exploration involves 120,000
files, more than 200 GB of storage and generates between 1-3 million COMPSs
tasks. One of the characteristics of the binaries involved in this workflow
is the requirement of a variable amount of memory for its execution."

DAG shape (per chromosome, per genome chunk):

    qc -> phasing -> imputation -> association       (per chunk)
    association[all chunks of chr] -> merge[chr]     (per chromosome)
    merge[all chrs] -> summary

Imputation is the memory-variable stage: per-task demand is drawn from a
heavy-tailed distribution spanning roughly 1–56 GB (the published GUIDANCE
range).  ``memory_mode`` selects the two managements E2 compares:

* ``"dynamic"`` — each task declares its actual demand (the COMPSs
  dynamically-evaluated memory constraint);
* ``"static"``  — every imputation reserves the worst case, which is what
  users did by hand before ("simplifies the management of the application
  from the user side ... enabled to reduce the execution time by 50%").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.executor.workflow_builder import SimWorkflowBuilder
from repro.simulation.random import DeterministicRandom

#: Worst-case imputation memory, MB (the top of GUIDANCE's observed range).
WORST_CASE_MEMORY_MB = 56_000


@dataclass(frozen=True)
class GuidanceConfig:
    """Scaled-down GUIDANCE parameters.

    Defaults give ~2.2k tasks (22 chromosomes x 24 chunks x 4 stages + merges),
    a faithful miniature of the 1–3M-task production runs; benchmarks scale
    ``chunks_per_chromosome`` up for the big experiments.
    """

    chromosomes: int = 22
    chunks_per_chromosome: int = 24
    memory_mode: str = "dynamic"  # "dynamic" | "static"
    seed: int = 42
    # Duration medians (seconds), heavy-tailed via lognormal sigma.
    qc_median_s: float = 30.0
    phasing_median_s: float = 120.0
    imputation_median_s: float = 300.0
    association_median_s: float = 60.0
    duration_sigma: float = 0.5
    # Memory distribution for imputation: lognormal, clipped to [1, 56] GB.
    # Median/σ chosen so the static-vs-dynamic packing gap on 96 GB nodes
    # lands in the ballpark of the paper's reported ~50% time reduction.
    memory_median_mb: float = 24_000.0
    memory_sigma: float = 0.5
    chunk_file_bytes: float = 1.7e6  # ~200 GB / 120k files

    def __post_init__(self) -> None:
        if self.memory_mode not in ("dynamic", "static"):
            raise ValueError(f"unknown memory_mode {self.memory_mode!r}")
        if self.chromosomes < 1 or self.chunks_per_chromosome < 1:
            raise ValueError("chromosomes and chunks_per_chromosome must be >= 1")


@dataclass
class GuidanceWorkload:
    """A generated GUIDANCE instance: the graph plus its bookkeeping."""

    builder: SimWorkflowBuilder
    config: GuidanceConfig
    task_count: int
    file_count: int
    total_input_bytes: float
    imputation_memory_mb: List[int] = field(default_factory=list)

    @property
    def graph(self):
        return self.builder.graph

    @property
    def initial_data(self) -> Dict[str, float]:
        return self.builder.initial_data


def _imputation_memory(rng: DeterministicRandom, config: GuidanceConfig) -> int:
    raw = rng.lognormal(config.memory_median_mb, config.memory_sigma)
    return int(min(max(raw, 1_000.0), WORST_CASE_MEMORY_MB))


def build_guidance_workflow(config: GuidanceConfig = GuidanceConfig()) -> GuidanceWorkload:
    """Generate the scaled GUIDANCE DAG under the given configuration."""
    rng = DeterministicRandom(seed=config.seed, name="guidance")
    duration_rng = rng.fork("durations")
    memory_rng = rng.fork("memory")
    builder = SimWorkflowBuilder()
    task_count = 0
    file_count = 0
    total_bytes = 0.0
    memories: List[int] = []

    def draw(median: float) -> float:
        return duration_rng.lognormal(median, config.duration_sigma)

    merge_inputs_by_chr: Dict[int, List[str]] = {}
    for chromosome in range(config.chromosomes):
        merge_inputs_by_chr[chromosome] = []
        for chunk in range(config.chunks_per_chromosome):
            tag = f"c{chromosome}k{chunk}"
            raw = f"raw/{tag}"
            builder.add_initial_datum(raw, config.chunk_file_bytes)
            file_count += 1
            total_bytes += config.chunk_file_bytes

            builder.add_task(
                f"qc/{tag}",
                duration=draw(config.qc_median_s),
                inputs=[raw],
                outputs={f"qc/{tag}": config.chunk_file_bytes},
                memory_mb=2_000,
            )
            builder.add_task(
                f"phasing/{tag}",
                duration=draw(config.phasing_median_s),
                inputs=[f"qc/{tag}"],
                outputs={f"phased/{tag}": config.chunk_file_bytes * 1.2},
                memory_mb=4_000,
            )
            demand = _imputation_memory(memory_rng, config)
            memories.append(demand)
            reserved = (
                demand if config.memory_mode == "dynamic" else WORST_CASE_MEMORY_MB
            )
            builder.add_task(
                f"imputation/{tag}",
                duration=draw(config.imputation_median_s),
                inputs=[f"phased/{tag}"],
                outputs={f"imputed/{tag}": config.chunk_file_bytes * 2.0},
                memory_mb=reserved,
            )
            builder.add_task(
                f"association/{tag}",
                duration=draw(config.association_median_s),
                inputs=[f"imputed/{tag}"],
                outputs={f"assoc/{tag}": config.chunk_file_bytes * 0.1},
                memory_mb=2_000,
            )
            merge_inputs_by_chr[chromosome].append(f"assoc/{tag}")
            task_count += 4
            file_count += 4

    merge_outputs: List[str] = []
    for chromosome, inputs in merge_inputs_by_chr.items():
        builder.add_task(
            f"merge/chr{chromosome}",
            duration=draw(config.association_median_s),
            inputs=inputs,
            outputs={f"merged/chr{chromosome}": config.chunk_file_bytes},
            memory_mb=8_000,
        )
        merge_outputs.append(f"merged/chr{chromosome}")
        task_count += 1
        file_count += 1

    builder.add_task(
        "summary",
        duration=draw(config.association_median_s),
        inputs=merge_outputs,
        outputs={"summary": 1e6},
        memory_mb=4_000,
    )
    task_count += 1
    file_count += 1

    return GuidanceWorkload(
        builder=builder,
        config=config,
        task_count=task_count,
        file_count=file_count,
        total_input_bytes=total_bytes,
        imputation_memory_mb=memories,
    )
