"""Synthetic NMMB-Monarch: the chemical weather workflow of §VI-A (claim C3).

"The NMMB-Monarch workflow is composed of five steps, that involve the
invocation of multiple scripts and external binaries, including a Fortran 90
application parallelized with MPI. ... the code with PyCOMPSs was able to
achieve better speed-up thanks to the parallelization of the sequential
part of the application, composed of the initialization scripts."

Per simulated day:

1. *init scripts* — ``init_scripts`` short independent tasks (variable-grid
   setup, boundary conditions, emission preprocessing...).  The original
   driver ran them **sequentially**; the PyCOMPSs port runs them in
   parallel — that toggle (``sequential_init``) is the whole experiment E3;
2. *preprocess* — assembles the model inputs (depends on every init output);
3. *simulation* — an MPI gang task spanning ``mpi_nodes`` nodes.  Day ``d``'s
   simulation also reads day ``d-1``'s restart file, chaining the days;
4. *postprocess* — ``post_tasks`` parallel product generators;
5. *archive* — one task gathering the day's products.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.executor.workflow_builder import SimWorkflowBuilder
from repro.simulation.random import DeterministicRandom


@dataclass(frozen=True)
class NmmbConfig:
    """NMMB-Monarch workflow parameters (times in seconds)."""

    days: int = 4
    init_scripts: int = 12
    sequential_init: bool = False
    init_script_median_s: float = 180.0
    preprocess_s: float = 120.0
    simulation_s: float = 1_800.0
    mpi_nodes: int = 4
    cores_per_node: int = 48
    post_tasks: int = 6
    post_task_s: float = 90.0
    archive_s: float = 60.0
    duration_sigma: float = 0.3
    seed: int = 7

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError("days must be >= 1")
        if self.init_scripts < 1:
            raise ValueError("init_scripts must be >= 1")


def build_nmmb_workflow(config: NmmbConfig = NmmbConfig()) -> SimWorkflowBuilder:
    """Generate the NMMB-Monarch DAG for ``config.days`` forecast days."""
    rng = DeterministicRandom(seed=config.seed, name="nmmb")
    builder = SimWorkflowBuilder()
    builder.add_initial_datum("static-fields", 5e8)

    previous_restart: str = ""
    for day in range(config.days):
        init_outputs: List[str] = []
        previous_script_output: str = ""
        for script in range(config.init_scripts):
            name = f"d{day}/init{script}"
            inputs = ["static-fields"]
            if config.sequential_init and previous_script_output:
                # The original driver: each script starts after the previous.
                inputs.append(previous_script_output)
            builder.add_task(
                name,
                duration=rng.lognormal(config.init_script_median_s, config.duration_sigma),
                inputs=inputs,
                outputs={name: 1e7},
                memory_mb=2_000,
            )
            init_outputs.append(name)
            previous_script_output = name

        preprocess_inputs = list(init_outputs)
        builder.add_task(
            f"d{day}/preprocess",
            duration=config.preprocess_s,
            inputs=preprocess_inputs,
            outputs={f"d{day}/model-input": 2e9},
            memory_mb=8_000,
        )

        sim_inputs = [f"d{day}/model-input"]
        if previous_restart:
            sim_inputs.append(previous_restart)
        builder.add_task(
            f"d{day}/simulation",
            duration=config.simulation_s,
            inputs=sim_inputs,
            outputs={
                f"d{day}/history": 5e9,
                f"d{day}/restart": 1e9,
            },
            cores=config.cores_per_node,
            nodes=config.mpi_nodes,
            memory_mb=64_000,
            software=["mpi"],
        )
        previous_restart = f"d{day}/restart"

        post_outputs: List[str] = []
        for p in range(config.post_tasks):
            name = f"d{day}/post{p}"
            builder.add_task(
                name,
                duration=rng.lognormal(config.post_task_s, config.duration_sigma),
                inputs=[f"d{day}/history"],
                outputs={name: 1e8},
                memory_mb=4_000,
            )
            post_outputs.append(name)

        builder.add_task(
            f"d{day}/archive",
            duration=config.archive_s,
            inputs=post_outputs,
            outputs={f"d{day}/products": 5e8},
            memory_mb=2_000,
        )

    return builder
