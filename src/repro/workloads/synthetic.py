"""Generic synthetic DAG generators for tests and micro-benchmarks."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.executor.workflow_builder import SimWorkflowBuilder
from repro.simulation.random import DeterministicRandom


def embarrassingly_parallel(
    num_tasks: int,
    duration: float = 10.0,
    cores: int = 1,
    memory_mb: int = 0,
    output_bytes: float = 0.0,
) -> SimWorkflowBuilder:
    """``num_tasks`` fully independent tasks (the §V "embarrassingly parallel"
    pattern)."""
    builder = SimWorkflowBuilder()
    for i in range(num_tasks):
        outputs = {f"out/{i}": output_bytes} if output_bytes else None
        builder.add_task(
            f"ep/{i}", duration=duration, cores=cores, memory_mb=memory_mb, outputs=outputs
        )
    return builder


def task_chain(length: int, duration: float = 10.0, datum_bytes: float = 1e6) -> SimWorkflowBuilder:
    """A strictly sequential chain — zero exploitable parallelism."""
    builder = SimWorkflowBuilder()
    previous: Optional[str] = None
    for i in range(length):
        inputs = [previous] if previous else []
        builder.add_task(
            f"chain/{i}",
            duration=duration,
            inputs=inputs,
            outputs={f"link/{i}": datum_bytes},
        )
        previous = f"link/{i}"
    return builder


def fork_join_dag(
    width: int,
    duration: float = 10.0,
    datum_bytes: float = 1e6,
) -> SimWorkflowBuilder:
    """source -> ``width`` branches -> sink (the §V fork/join pattern)."""
    builder = SimWorkflowBuilder()
    builder.add_task("source", duration=duration, outputs={"seed": datum_bytes})
    branch_outputs: List[str] = []
    for i in range(width):
        builder.add_task(
            f"branch/{i}",
            duration=duration,
            inputs=["seed"],
            outputs={f"branch-out/{i}": datum_bytes},
        )
        branch_outputs.append(f"branch-out/{i}")
    builder.add_task("sink", duration=duration, inputs=branch_outputs)
    return builder


def layered_random_dag(
    layers: Sequence[int],
    seed: int = 0,
    duration_median: float = 10.0,
    duration_sigma: float = 0.5,
    fan_in: int = 3,
    datum_bytes: float = 1e6,
    memory_mb: int = 0,
) -> SimWorkflowBuilder:
    """A layered random DAG: each task reads up to ``fan_in`` outputs of the
    previous layer.  Deterministic for a given seed."""
    if not layers:
        raise ValueError("layers must be non-empty")
    rng = DeterministicRandom(seed=seed, name="layered-dag")
    builder = SimWorkflowBuilder()
    previous_outputs: List[str] = []
    for layer_index, width in enumerate(layers):
        current_outputs: List[str] = []
        for i in range(width):
            inputs: List[str] = []
            if previous_outputs:
                count = min(fan_in, len(previous_outputs))
                pool = list(previous_outputs)
                rng.shuffle(pool)
                inputs = pool[:count]
            name = f"L{layer_index}/t{i}"
            builder.add_task(
                name,
                duration=rng.lognormal(duration_median, duration_sigma),
                inputs=inputs,
                outputs={name: datum_bytes},
                memory_mb=memory_mb,
            )
            current_outputs.append(name)
        previous_outputs = current_outputs
    return builder


def staged_spec_to_builder(
    stages: Sequence[Sequence[Dict]],
    barriers: bool,
) -> SimWorkflowBuilder:
    """Build a DAG from a stage spec, with or without global stage barriers.

    Each stage is a list of ``add_task`` kwargs.  With ``barriers=True`` every
    task additionally depends on *all* tasks of the previous stage — the
    fragmented-pipeline execution model (see :mod:`repro.baselines`).  With
    ``barriers=False`` only the declared data dependencies apply (the
    holistic single-flow model the paper argues for).
    """
    builder = SimWorkflowBuilder()
    previous_ids: List[int] = []
    for stage in stages:
        current_ids: List[int] = []
        for spec in stage:
            kwargs = dict(spec)
            if barriers:
                extra = list(kwargs.get("depends_on", ()))
                extra.extend(previous_ids)
                kwargs["depends_on"] = extra
            instance = builder.add_task(**kwargs)
            current_ids.append(instance.task_id)
        previous_ids = current_ids
    return builder
