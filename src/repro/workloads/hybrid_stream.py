"""Hybrid stream campaign: operator dataflows lowered into zone executors.

The long-running workload the dataflow plane exists for (§I, §III —
sensors stream in, scientists want results streamed out, and the same
runtime runs the batch stages).  Each zone runs:

* ``sensors_per_zone`` edge sensors emitting in batches through per-sensor
  credit valves (drop or spill on starvation);
* an operator graph — per-sensor calibrate/QC chains fanning into a
  tumbling aggregation window, a keyed join across the first two sensors,
  and a batch recalibration stage every ``batch_every`` windows whose
  output *feeds back* into the QC threshold (streams feed batch, batch
  feeds streams);
* a :class:`~repro.streams.dataflow.DataflowPlane` lowering every window
  close into the zone's :class:`SimulatedExecutor` — window tasks ride
  the same placement/locality/content-key machinery as any batch DAG;
* a cross-zone digest ring paying the WAN latency, so the campaign
  exercises the sharded/parallel engines' window protocol.

The same ``{zone: factory}`` programs run on all three engines with
byte-identical results (asserted through per-zone outcome CRCs).
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.infrastructure.cluster import make_hpc_cluster
from repro.infrastructure.network import Link, NetworkTopology
from repro.scheduling.locations import DataLocationService
from repro.scheduling.policies import LoadBalancingPolicy
from repro.simulation.random import DeterministicRandom
from repro.streams import CreditValve, DataflowPlane, OperatorGraph, SensorSource
from repro.workloads.zonal import zone_name


@dataclass(frozen=True)
class HybridStreamConfig:
    """One hybrid campaign: per-zone dataflows + cross-zone digest ring."""

    zones: int = 2
    sensors_per_zone: int = 4
    #: Nominal readings per second per sensor.
    rate_hz: float = 10.0
    #: Readings published per engine event (the flat-cost lever).
    batch: int = 16
    window_s: float = 5.0
    duration_s: float = 120.0
    #: Credits per sensor valve (elements in flight before the policy bites).
    credits: int = 4096
    overflow: str = "spill"
    #: Window results per batch recalibration task.
    batch_every: int = 6
    nodes_per_zone: int = 2
    cores_per_node: int = 4
    inter_zone_latency_s: float = 0.25
    digest_interval_s: float = 20.0
    jitter: float = 0.1
    bytes_per_element: float = 64.0
    seed: int = 42


def make_hybrid_stream_network(cfg: HybridStreamConfig) -> NetworkTopology:
    """Inter-zone topology: one gateway per zone, WAN default links."""
    network = NetworkTopology(
        intra_zone_link=Link(latency_s=1e-4, bandwidth_bps=10e9 / 8),
        default_link=Link(latency_s=cfg.inter_zone_latency_s, bandwidth_bps=1e9 / 8),
    )
    for index in range(cfg.zones):
        network.add_node(f"{zone_name(index)}-gw", zone_name(index))
    return network


def _hybrid_zone_factory(cfg: HybridStreamConfig, index: int):
    """One zone's program: sensors + operator graph + plane + digest ring.

    Closes over plain config only, so fork lanes inherit it cheaply.
    """

    def factory(api) -> Any:
        zone = zone_name(index)
        platform = make_hpc_cluster(
            cfg.nodes_per_zone, cores_per_node=cfg.cores_per_node, name=zone
        )
        # Local import breaks the executor<->workloads module cycle.
        from repro.core.graph import TaskGraph
        from repro.executor.simulated import SimulatedExecutor

        graph = TaskGraph()
        executor = SimulatedExecutor(
            graph,
            platform,
            policy=LoadBalancingPolicy(),
            engine=api,
            locations=DataLocationService(),
        )
        operators = OperatorGraph(f"{zone}-flow")
        # Batch->stream feedback cell: the recalibration stage retunes the
        # QC threshold mid-campaign (deterministic, so engines agree).
        qc_threshold = [95.0]
        valves = []
        sensors = []
        chains = []
        zone_rng = DeterministicRandom(cfg.seed, "hybrid").fork(f"zone:{index}")
        for s in range(cfg.sensors_per_zone):
            valve = CreditValve(cfg.credits, policy=cfg.overflow)
            valves.append(valve)
            src = operators.source(f"sensor-{s}", valve=valve)
            chain = src.map(f"calib-{s}", lambda v: v * 100.0).filter(
                f"qc-{s}", lambda v: v >= qc_threshold[0]
            )
            chains.append(chain)
            sensors.append(
                SensorSource(
                    api,
                    src.stream,
                    name=f"{zone}-sensor-{s}",
                    period_s=1.0 / cfg.rate_hz,
                    jitter=cfg.jitter,
                    until=cfg.duration_s,
                    seed=zone_rng.fork(f"sensor:{s}").seed,
                    batch=cfg.batch,
                    valve=valve,
                    zone=zone,
                )
            )
        window = operators.tumbling_window(
            "agg",
            chains,
            cfg.window_s,
            compute_fn=lambda values: sum(values) / len(values),
            bytes_per_element=cfg.bytes_per_element,
        )
        if cfg.sensors_per_zone >= 2:
            operators.keyed_join(
                "pair",
                chains[0],
                chains[1],
                cfg.window_s,
                key_fn=lambda v: int(v) & 3,
                join_fn=lambda key, left, right: (key, len(left), len(right)),
                bytes_per_element=cfg.bytes_per_element,
            )
        recal = window.batch_every(
            "recal",
            cfg.batch_every,
            fn=lambda results: sum(r.element_count for r in results),
        )
        recal.output.subscribe(
            lambda el: qc_threshold.__setitem__(
                0, 95.0 + (el.value.value % 7) * 0.1
            )
        )
        plane = DataflowPlane(operators, executor, ingest_node=f"{zone}-n0", zone=zone)
        for sensor in sensors:
            sensor.start()
        plane.start()
        # Sources close one window past the horizon so the final window's
        # close event (scheduled at setup, same-timestamp but earlier
        # sequence) still finds live streams when they coincide.
        plane.close_sources_at(cfg.duration_s + cfg.window_s)
        peer = zone_name((index + 1) % cfg.zones)

        def on_digest(payload: Dict[str, Any]) -> None:
            api.log(("peer-digest", payload["zone"], payload["crc"]))

        api.on_message(on_digest)

        def ping() -> None:
            crc = zlib.crc32(
                pickle.dumps((zone, plane.windows_closed, plane.elements_ingested))
            )
            api.send(
                peer,
                {"zone": zone, "crc": crc},
                delay=cfg.inter_zone_latency_s,
                label="stream-digest",
            )
            if api.now + cfg.digest_interval_s <= cfg.duration_s + 1e-9:
                api.after(cfg.digest_interval_s, ping, label="digest-tick")

        if cfg.zones > 1:
            api.after(cfg.digest_interval_s, ping, label="digest-tick")

        def result() -> Dict[str, Any]:
            report = executor.report()
            task_records = sorted(
                (
                    t.label,
                    t.state.name,
                    t.start_time,
                    t.end_time,
                    tuple(t.assigned_nodes),
                    t.cache_key,
                )
                for t in graph.tasks
            )
            window_records = [
                (r.window_start, r.window_end, r.completed_at, repr(r.value))
                for r in plane.results_of("agg")
            ]
            digest = zlib.crc32(pickle.dumps((task_records, window_records)))
            stats = plane.stats()
            return {
                "zone": zone,
                "produced": sum(s.produced for s in sensors),
                "emitted": sum(s.emitted for s in sensors),
                "stream_events": stats["elements_ingested"],
                "dropped": stats["dropped"],
                "spilled": stats["spilled"],
                "windows_closed": stats["windows_closed"],
                "tasks_lowered": stats["tasks_lowered"],
                "batch_tasks": stats["batch_tasks"],
                "late_elements": stats["late_elements"],
                "buffered_high_water": stats["buffered_high_water"],
                "retained_high_water": stats["retained_high_water"],
                "mean_latency_s": plane.mean_latency("agg"),
                "max_latency_s": plane.max_latency("agg"),
                "tasks_done": report.tasks_done,
                "makespan_s": report.makespan,
                "events": api.dispatched_events,
                "outcome_crc32": digest,
            }

        return result

    return factory


def make_hybrid_stream_programs(cfg: HybridStreamConfig) -> Dict[str, Any]:
    """``{zone: factory}`` programs for the sharded/parallel engines."""
    return {zone_name(i): _hybrid_zone_factory(cfg, i) for i in range(cfg.zones)}


def run_hybrid_stream(
    cfg: HybridStreamConfig, engine: str = "single", workers: int = 2
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Run the campaign on the chosen engine; returns (result, stats).

    Same programs on ``single`` (one inline lane), ``sharded`` (sequential
    lookahead reference), or ``parallel`` (forked lanes) — byte-identical
    deterministic results on all three.
    """
    from repro.simulation.parallel import (
        ParallelShardedSimulationEngine,
        run_programs_sharded,
    )

    network = make_hybrid_stream_network(cfg)
    programs = make_hybrid_stream_programs(cfg)
    stats: Dict[str, Any] = {}
    if engine == "sharded":
        out = run_programs_sharded(network, programs)
        per_zone = out["results"]
        dispatched = sum(out["shard_dispatch_counts"].values())
    elif engine in ("single", "parallel"):
        sim = ParallelShardedSimulationEngine(
            network, programs, workers=1 if engine == "single" else workers
        )
        sim.run()
        per_zone = sim.results
        dispatched = sim.dispatched_events
        stats = sim.stats
    else:
        raise ValueError(f"unknown engine {engine!r} (single, sharded, parallel)")
    ordered = {zone: per_zone[zone] for zone in sorted(per_zone)}
    zones = list(ordered.values())
    result = {
        "workload": "hybrid_stream",
        "zones": cfg.zones,
        "sensors": cfg.zones * cfg.sensors_per_zone,
        "rate_hz": cfg.rate_hz,
        "batch": cfg.batch,
        "window_s": cfg.window_s,
        "duration_s": cfg.duration_s,
        "credits": cfg.credits,
        "overflow": cfg.overflow,
        "produced": sum(z["produced"] for z in zones),
        "stream_events": sum(z["stream_events"] for z in zones),
        "stream_dropped": sum(z["dropped"] for z in zones),
        "stream_spilled": sum(z["spilled"] for z in zones),
        "windows_closed": sum(z["windows_closed"] for z in zones),
        "tasks_lowered": sum(z["tasks_lowered"] for z in zones),
        "batch_tasks": sum(z["batch_tasks"] for z in zones),
        "tasks_done": sum(z["tasks_done"] for z in zones),
        "mean_latency_s": sum(z["mean_latency_s"] for z in zones) / len(zones),
        "max_latency_s": max(z["max_latency_s"] for z in zones),
        "retained_high_water": max(z["retained_high_water"] for z in zones),
        "events": dispatched,
        "per_zone": ordered,
    }
    return result, stats
