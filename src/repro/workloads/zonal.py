"""Multi-zone E1-style workload decomposed into per-zone programs.

The classic E1 workloads (GUIDANCE on one cluster) have a *central*
scheduler: any completion anywhere can trigger a dispatch anywhere, so the
true lookahead between zones is zero and only the coupled/single-queue
engines apply.  The continuum deployments the paper targets (§V, fog-to-
cloud) are shaped differently: each zone runs its own workload on its own
resources and zones interact only over the WAN — which is exactly the
decomposition the conservative-lookahead engines exploit.

This module builds that shape: ``zones`` independent E1-style layered DAGs,
each executed by its own :class:`SimulatedExecutor` on a zone-local cluster,
with a ring of cross-zone progress reports paying the inter-zone latency.
The same ``{zone: factory}`` programs run on any of the three engines
(:func:`run_zonal`), and because each zone's stream is deterministic and
zone-local, all three produce byte-identical results.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.infrastructure.cluster import make_hpc_cluster
from repro.infrastructure.network import Link, NetworkTopology
from repro.scheduling.locations import DataLocationService
from repro.scheduling.policies import LoadBalancingPolicy
from repro.simulation.random import DeterministicRandom
from repro.workloads.synthetic import layered_random_dag


@dataclass(frozen=True)
class ZonalConfig:
    """One multi-zone campaign: ``zones`` independent zone-local DAG runs."""

    zones: int = 4
    nodes_per_zone: int = 8
    cores_per_node: int = 8
    tasks_per_zone: int = 2400
    duration_median_s: float = 2.0
    duration_sigma: float = 0.5
    #: WAN latency between zones — the conservative lookahead horizon.
    #: Larger latency = wider windows = fewer barriers; at 1.0 s the 4-zone
    #: default point runs ~160 windows with ~30 events per zone-window,
    #: which keeps barrier overhead well under the lane compute.
    inter_zone_latency_s: float = 1.0
    #: Ring progress-report period (zone i pings zone i+1).
    progress_interval_s: float = 25.0
    datum_bytes: float = 1e5
    seed: int = 42


def zone_name(index: int) -> str:
    return f"zone-{index}"


def make_zonal_network(cfg: ZonalConfig) -> NetworkTopology:
    """The inter-zone topology: one gateway per zone, WAN default links.

    Zone-local traffic never touches this network — each zone program owns
    its own cluster platform — so one placed node per zone is enough to
    define the zones and their latency structure.
    """
    network = NetworkTopology(
        intra_zone_link=Link(latency_s=1e-4, bandwidth_bps=10e9 / 8),
        default_link=Link(latency_s=cfg.inter_zone_latency_s, bandwidth_bps=1e9 / 8),
    )
    for index in range(cfg.zones):
        network.add_node(f"{zone_name(index)}-gw", zone_name(index))
    return network


def _layers(cfg: ZonalConfig) -> List[int]:
    """Split the zone's task budget into cluster-width layers."""
    width = max(1, cfg.nodes_per_zone * cfg.cores_per_node)
    layers: List[int] = []
    remaining = cfg.tasks_per_zone
    while remaining > 0:
        take = min(width, remaining)
        layers.append(take)
        remaining -= take
    return layers


def _zone_factory(cfg: ZonalConfig, index: int):
    """One zone's program: local DAG + executor + ring progress reports.

    Module-level state only (the factory closes over plain config), so fork
    lanes inherit it cheaply and nothing but channel messages is pickled.
    """

    def factory(api) -> Any:
        zone = zone_name(index)
        seed = DeterministicRandom(cfg.seed, "zonal").fork(f"zone:{index}").seed
        builder = layered_random_dag(
            _layers(cfg),
            seed=seed,
            duration_median=cfg.duration_median_s,
            duration_sigma=cfg.duration_sigma,
            datum_bytes=cfg.datum_bytes,
        )
        platform = make_hpc_cluster(
            cfg.nodes_per_zone, cores_per_node=cfg.cores_per_node, name=zone
        )
        # Local import breaks the executor<->workloads module cycle.
        from repro.executor.simulated import SimulatedExecutor

        executor = SimulatedExecutor(
            builder.graph,
            platform,
            policy=LoadBalancingPolicy(),
            engine=api,
            locations=DataLocationService(),
        )
        peer = zone_name((index + 1) % cfg.zones)

        def on_progress(payload: Dict[str, Any]) -> None:
            api.log(("peer-progress", payload["zone"], payload["done"]))

        api.on_message(on_progress)

        def ping() -> None:
            api.send(
                peer,
                {"zone": zone, "done": executor.graph.completed_count},
                delay=cfg.inter_zone_latency_s,
                label="progress",
            )
            # Reschedule only while the local workload is live: a finished
            # zone goes quiet, which is what lets the whole run quiesce.
            if not executor.graph.finished:
                api.after(cfg.progress_interval_s, ping, label="progress-tick")

        if cfg.zones > 1:
            api.after(cfg.progress_interval_s, ping, label="progress-tick")
        executor.prime()

        def result() -> Dict[str, Any]:
            report = executor.report()
            digest = zlib.crc32(
                pickle.dumps(
                    sorted(
                        (
                            t.label,
                            t.state.name,
                            t.start_time,
                            t.end_time,
                            tuple(t.assigned_nodes),
                        )
                        for t in builder.graph.tasks
                    )
                )
            )
            return {
                "zone": zone,
                "tasks_done": report.tasks_done,
                "tasks_failed": report.tasks_failed,
                "makespan_s": report.makespan,
                "bytes_transferred": report.bytes_transferred,
                "events": api.dispatched_events,
                "outcome_crc32": digest,
            }

        return result

    return factory


def make_zone_programs(cfg: ZonalConfig) -> Dict[str, Any]:
    """``{zone: factory}`` programs for the parallel/sharded engines."""
    return {zone_name(i): _zone_factory(cfg, i) for i in range(cfg.zones)}


def run_zonal(
    cfg: ZonalConfig, engine: str = "parallel", workers: int = 2
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Run the campaign on the chosen engine; returns (result, stats).

    Engines — same programs, byte-identical deterministic results:

    * ``single``: the parallel coordinator with one in-process lane (the
      window protocol, sequentially);
    * ``sharded``: the sequential :class:`ShardedSimulationEngine` in
      lookahead mode via :func:`run_programs_sharded`;
    * ``parallel``: forked lanes, ``workers`` wide.

    ``result`` carries only seed-determined fields; ``stats`` carries the
    non-deterministic execution metrics (empty for ``sharded``).
    """
    from repro.simulation.parallel import (
        ParallelShardedSimulationEngine,
        run_programs_sharded,
    )

    network = make_zonal_network(cfg)
    programs = make_zone_programs(cfg)
    stats: Dict[str, Any] = {}
    if engine == "sharded":
        out = run_programs_sharded(network, programs)
        per_zone = out["results"]
        dispatched = sum(out["shard_dispatch_counts"].values())
    elif engine in ("single", "parallel"):
        sim = ParallelShardedSimulationEngine(
            network, programs, workers=1 if engine == "single" else workers
        )
        sim.run()
        per_zone = sim.results
        dispatched = sim.dispatched_events
        stats = sim.stats
    else:
        raise ValueError(f"unknown engine {engine!r} (single, sharded, parallel)")
    ordered = {zone: per_zone[zone] for zone in sorted(per_zone)}
    result = {
        "workload": "zonal",
        "zones": cfg.zones,
        "tasks_done": sum(z["tasks_done"] for z in ordered.values()),
        "tasks_failed": sum(z["tasks_failed"] for z in ordered.values()),
        "makespan_s": max(z["makespan_s"] for z in ordered.values()),
        "bytes_transferred": sum(z["bytes_transferred"] for z in ordered.values()),
        "events": dispatched,
        "per_zone": ordered,
    }
    return result, stats
