"""Workload generators (DESIGN.md S13): the paper's case studies, scaled.

Synthetic equivalents of the applications the paper evaluates the COMPSs
model on — the substitution rule in action (DESIGN.md §2): the DAG shapes,
duration distributions and memory demands follow §VI-A's description, while
absolute magnitudes are scaled to simulate quickly.
"""

from repro.workloads.guidance import (
    GuidanceConfig,
    GuidanceWorkload,
    build_guidance_workflow,
)
from repro.workloads.nmmb import NmmbConfig, build_nmmb_workflow
from repro.workloads.synthetic import (
    embarrassingly_parallel,
    task_chain,
    fork_join_dag,
    layered_random_dag,
)
from repro.workloads.zonal import (
    ZonalConfig,
    make_zonal_network,
    make_zone_programs,
    run_zonal,
    zone_name,
)
from repro.workloads.churn import (
    ChurnConfig,
    make_churn_programs,
    run_churn,
    run_churn_fleet,
)
from repro.workloads.hybrid_stream import (
    HybridStreamConfig,
    make_hybrid_stream_programs,
    run_hybrid_stream,
)

__all__ = [
    "ChurnConfig",
    "HybridStreamConfig",
    "make_hybrid_stream_programs",
    "run_hybrid_stream",
    "make_churn_programs",
    "run_churn",
    "run_churn_fleet",
    "GuidanceConfig",
    "GuidanceWorkload",
    "build_guidance_workflow",
    "NmmbConfig",
    "build_nmmb_workflow",
    "embarrassingly_parallel",
    "task_chain",
    "fork_join_dag",
    "layered_random_dag",
    "ZonalConfig",
    "make_zonal_network",
    "make_zone_programs",
    "run_zonal",
    "zone_name",
]
