"""A SLURM-like batch job manager with allocation elasticity (claim C6).

Models what the COMPSs runtime sees of SLURM: you submit a job asking for N
nodes, wait in a FIFO queue until N nodes are free, and — the elasticity
feature the paper highlights — a *running* job can request extra nodes, which
are granted when available and joined to the job's allocation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.infrastructure.platform import Platform
from repro.simulation.engine import SimulationEngine


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"


@dataclass
class SlurmJob:
    """A batch job: a request for nodes plus lifecycle bookkeeping."""

    job_id: int
    requested_nodes: int
    state: JobState = JobState.PENDING
    allocated: List[str] = field(default_factory=list)
    submit_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    on_start: Optional[Callable[["SlurmJob"], None]] = None
    on_grow: Optional[Callable[["SlurmJob", List[str]], None]] = None
    # Pending grow requests (node counts) in FIFO order.
    grow_requests: List[int] = field(default_factory=list)

    @property
    def wait_time(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time


class SlurmManager:
    """FIFO batch scheduler over a platform's nodes.

    Nodes managed by the SlurmManager are handed to jobs exclusively; a job's
    COMPSs runtime then schedules tasks only on its allocation.
    """

    def __init__(self, platform: Platform, engine: SimulationEngine) -> None:
        self.platform = platform
        self.engine = engine
        self._free: List[str] = [n.name for n in platform.alive_nodes]
        self._queue: List[SlurmJob] = []
        self._jobs: Dict[int, SlurmJob] = {}
        self._next_id = 1

    @property
    def free_node_count(self) -> int:
        return len(self._free)

    def job(self, job_id: int) -> SlurmJob:
        return self._jobs[job_id]

    def submit(
        self,
        requested_nodes: int,
        on_start: Optional[Callable[[SlurmJob], None]] = None,
        on_grow: Optional[Callable[[SlurmJob, List[str]], None]] = None,
    ) -> SlurmJob:
        """Enqueue a job; ``on_start`` fires (in virtual time) at allocation."""
        if requested_nodes <= 0:
            raise ValueError(f"requested_nodes must be > 0, got {requested_nodes}")
        if requested_nodes > len(self._free) + self._allocated_count():
            raise ValueError(
                f"job wants {requested_nodes} nodes but the cluster only has "
                f"{len(self._free) + self._allocated_count()}"
            )
        job = SlurmJob(
            job_id=self._next_id,
            requested_nodes=requested_nodes,
            submit_time=self.engine.now,
            on_start=on_start,
            on_grow=on_grow,
        )
        self._next_id += 1
        self._jobs[job.job_id] = job
        self._queue.append(job)
        # Try to place immediately (still via the event loop for determinism).
        self.engine.after(0.0, self._drain_queue, label="slurm-drain")
        return job

    def request_grow(self, job_id: int, extra_nodes: int) -> None:
        """A running job asks for more nodes (COMPSs SLURM elasticity)."""
        job = self._jobs[job_id]
        if job.state is not JobState.RUNNING:
            raise ValueError(f"job {job_id} is not running")
        if extra_nodes <= 0:
            raise ValueError(f"extra_nodes must be > 0, got {extra_nodes}")
        job.grow_requests.append(extra_nodes)
        self.engine.after(0.0, self._drain_queue, label="slurm-drain")

    def release(self, job_id: int) -> None:
        """Job finished: return its allocation to the free pool."""
        job = self._jobs[job_id]
        if job.state is not JobState.RUNNING:
            raise ValueError(f"job {job_id} is not running")
        job.state = JobState.COMPLETED
        job.end_time = self.engine.now
        self._free.extend(job.allocated)
        job.allocated = []
        self.engine.after(0.0, self._drain_queue, label="slurm-drain")

    def release_nodes(self, job_id: int, node_names: List[str]) -> None:
        """Shrink a running job's allocation (elastic scale-in)."""
        job = self._jobs[job_id]
        for name in node_names:
            if name not in job.allocated:
                raise ValueError(f"node {name!r} is not allocated to job {job_id}")
            job.allocated.remove(name)
            self._free.append(name)
        self.engine.after(0.0, self._drain_queue, label="slurm-drain")

    # ------------------------------------------------------------------ internals

    def _allocated_count(self) -> int:
        return sum(len(j.allocated) for j in self._jobs.values())

    def _drain_queue(self) -> None:
        # Strict FIFO: the head job blocks later jobs (no backfill), which is
        # the conservative model and keeps results easy to reason about.
        while self._queue and self._queue[0].requested_nodes <= len(self._free):
            job = self._queue.pop(0)
            job.allocated = [self._free.pop(0) for _ in range(job.requested_nodes)]
            job.state = JobState.RUNNING
            job.start_time = self.engine.now
            if job.on_start is not None:
                job.on_start(job)
        # Grow requests are honoured only when no queued job is waiting, so
        # elasticity cannot starve the FIFO queue.
        if not self._queue:
            for job in self._jobs.values():
                if job.state is not JobState.RUNNING:
                    continue
                while job.grow_requests and job.grow_requests[0] <= len(self._free):
                    count = job.grow_requests.pop(0)
                    new_nodes = [self._free.pop(0) for _ in range(count)]
                    job.allocated.extend(new_nodes)
                    if job.on_grow is not None:
                        job.on_grow(job, new_nodes)
