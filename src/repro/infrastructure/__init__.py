"""Computing-continuum infrastructure model (DESIGN.md S7).

Models the Advanced Cyberinfrastructure Platforms of the paper's §III: edge
devices, fog devices, cloud providers with elasticity, HPC clusters managed by
a SLURM-like job manager, the network connecting them, and an energy model.
Everything is a plain-Python description consumed by the schedulers and the
simulated executor; nothing here talks to real hardware.
"""

from repro.infrastructure.resources import (
    Node,
    NodeKind,
    PowerProfile,
    GpuSpec,
)
from repro.infrastructure.network import NetworkTopology, Link, TransferRecord
from repro.infrastructure.energy import EnergyAccountant
from repro.infrastructure.platform import Platform
from repro.infrastructure.cluster import make_hpc_cluster, make_fog_platform
from repro.infrastructure.cloud import CloudProvider, ElasticityPolicy
from repro.infrastructure.federation import CloudFederation
from repro.infrastructure.containers import (
    ContainerImage,
    ContainerRuntime,
    ImageRegistry,
    container_stage_in,
)
from repro.infrastructure.slurm import SlurmManager, SlurmJob

__all__ = [
    "Node",
    "NodeKind",
    "PowerProfile",
    "GpuSpec",
    "NetworkTopology",
    "Link",
    "TransferRecord",
    "EnergyAccountant",
    "Platform",
    "make_hpc_cluster",
    "make_fog_platform",
    "CloudProvider",
    "ElasticityPolicy",
    "CloudFederation",
    "ContainerImage",
    "ContainerRuntime",
    "ImageRegistry",
    "container_stage_in",
    "SlurmManager",
    "SlurmJob",
]
