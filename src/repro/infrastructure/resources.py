"""Node and processor descriptions for the computing continuum.

A :class:`Node` is the unit the scheduler places tasks on.  Nodes span the
whole continuum of the paper's §III: sensors and edge devices, fog devices
(smartphones/tablets with batteries), cloud VMs, and HPC compute nodes.  The
differences that matter to the runtime are captured as plain attributes:
core/memory/GPU capacity, relative speed, installed software, power profile
and (for battery devices) remaining energy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional


class NodeKind(enum.Enum):
    """Where in the continuum a node lives (Fig. 5 layers)."""

    EDGE = "edge"
    FOG = "fog"
    CLOUD = "cloud"
    HPC = "hpc"


@dataclass(frozen=True)
class GpuSpec:
    """An accelerator attached to a node."""

    model: str = "generic-gpu"
    memory_mb: int = 16_000


@dataclass(frozen=True)
class PowerProfile:
    """Simple linear power model for a node.

    ``power = idle_watts + busy_watts_per_core * busy_cores`` — coarse, but
    sufficient to rank scheduling policies by energy (claim C7).
    """

    idle_watts: float = 100.0
    busy_watts_per_core: float = 10.0

    def power(self, busy_cores: int) -> float:
        """Instantaneous power draw with ``busy_cores`` cores active."""
        if busy_cores < 0:
            raise ValueError(f"busy_cores must be >= 0, got {busy_cores}")
        return self.idle_watts + self.busy_watts_per_core * busy_cores


@dataclass
class Node:
    """A schedulable resource in the continuum.

    Attributes:
        name: unique identifier within a platform.
        kind: continuum layer (edge/fog/cloud/HPC).
        cores: number of CPU cores.
        memory_mb: RAM available for tasks.
        gpus: attached accelerators.
        speed_factor: relative compute speed; a task's base duration is
            divided by this (an HPC core at 1.0, a phone core at ~0.25).
        software: installed software names, matched against task constraints.
        power: linear power model used by the energy accountant.
        battery_joules: remaining battery for fog/edge devices, or None for
            mains-powered nodes.  The failure injector can drain it.
        failed: set when a failure is injected; failed nodes accept no tasks.
    """

    name: str
    kind: NodeKind = NodeKind.CLOUD
    cores: int = 4
    memory_mb: int = 16_000
    gpus: tuple = ()
    speed_factor: float = 1.0
    software: FrozenSet[str] = field(default_factory=frozenset)
    power: PowerProfile = field(default_factory=PowerProfile)
    battery_joules: Optional[float] = None
    failed: bool = False

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"node {self.name!r} must have > 0 cores")
        if self.memory_mb <= 0:
            raise ValueError(f"node {self.name!r} must have > 0 memory")
        if self.speed_factor <= 0:
            raise ValueError(f"node {self.name!r} must have > 0 speed_factor")
        if isinstance(self.software, (list, set, tuple)):
            self.software = frozenset(self.software)

    @property
    def gpu_count(self) -> int:
        return len(self.gpus)

    @property
    def alive(self) -> bool:
        """A node is alive unless failed or battery-dead."""
        if self.failed:
            return False
        if self.battery_joules is not None and self.battery_joules <= 0:
            return False
        return True

    def fail(self) -> None:
        """Mark the node as failed (used by the failure injector)."""
        self.failed = True

    def recover(self) -> None:
        """Bring a failed node back (not used by battery-dead nodes)."""
        self.failed = False

    def __repr__(self) -> str:
        return (
            f"Node({self.name!r}, {self.kind.value}, cores={self.cores}, "
            f"mem={self.memory_mb}MB, gpus={self.gpu_count}, "
            f"speed={self.speed_factor})"
        )
