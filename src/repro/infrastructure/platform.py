"""The Platform: the set of resources a runtime schedules onto.

A platform bundles nodes, the network topology connecting them, and an energy
accountant.  It is mutable at runtime — nodes can join (cloud elasticity,
agents discovering fog devices) and leave (failures, battery death, scale-in)
— mirroring the paper's requirement that "the set of available resources can
be updated" while applications run (§VI-B).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.infrastructure.energy import EnergyAccountant
from repro.infrastructure.network import NetworkTopology
from repro.infrastructure.resources import Node, NodeKind


class PlatformError(RuntimeError):
    """Raised for invalid platform mutations (duplicate node names, etc.)."""


class Platform:
    """A named collection of nodes plus network and energy models."""

    def __init__(
        self,
        name: str = "platform",
        network: Optional[NetworkTopology] = None,
    ) -> None:
        self.name = name
        self.network = network if network is not None else NetworkTopology()
        self.energy = EnergyAccountant()
        self._nodes: Dict[str, Node] = {}
        # Insertion-ordered live index: nodes registered and not yet
        # failed/removed through the platform API.  Under fleet churn the
        # dead stay listed in ``_nodes`` (failed in place), so scans keyed
        # on this index cost O(live), not O(ever registered).
        self._alive_index: Dict[str, None] = {}
        # Observers notified on node join/leave (schedulers subscribe).
        self._join_listeners: List[Callable[[Node], None]] = []
        self._leave_listeners: List[Callable[[Node], None]] = []

    # ------------------------------------------------------------------ nodes

    def add_node(self, node: Node, zone: str = "default", at: float = 0.0) -> Node:
        """Register a node, place it in a network zone, start its energy meter."""
        if node.name in self._nodes:
            raise PlatformError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        if node.alive:
            self._alive_index[node.name] = None
        self.network.add_node(node.name, zone)
        self.energy.register_node(node, on_since=at)
        for listener in self._join_listeners:
            listener(node)
        return node

    def add_nodes(self, nodes: Iterable[Node], zone: str = "default", at: float = 0.0) -> None:
        for node in nodes:
            self.add_node(node, zone=zone, at=at)

    def remove_node(self, name: str, at: float = 0.0) -> Node:
        """Remove a node (scale-in / permanent failure)."""
        if name not in self._nodes:
            raise PlatformError(f"unknown node {name!r}")
        node = self._nodes.pop(name)
        self._alive_index.pop(name, None)
        self.energy.power_off(name, at)
        for listener in self._leave_listeners:
            listener(node)
        return node

    def fail_node(self, name: str, at: float = 0.0) -> Node:
        """Mark a node failed in place (it stays listed, but is not alive)."""
        node = self.node(name)
        node.fail()
        self._alive_index.pop(name, None)
        self.energy.power_off(name, at)
        for listener in self._leave_listeners:
            listener(node)
        return node

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise PlatformError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> List[Node]:
        """All registered nodes, in insertion order."""
        return list(self._nodes.values())

    @property
    def alive_nodes(self) -> List[Node]:
        # The ``n.alive`` re-check covers battery-dead nodes whose death has
        # not yet been routed through ``fail_node`` (a one-event window).
        nodes = self._nodes
        return [n for n in (nodes[name] for name in self._alive_index) if n.alive]

    @property
    def alive_count(self) -> int:
        """Number of live nodes, without materialising the list."""
        nodes = self._nodes
        return sum(1 for name in self._alive_index if nodes[name].alive)

    def nodes_of_kind(self, kind: NodeKind) -> List[Node]:
        return [n for n in self._nodes.values() if n.kind is kind]

    @property
    def total_cores(self) -> int:
        return sum(n.cores for n in self.alive_nodes)

    # -------------------------------------------------------------- listeners

    def on_node_join(self, listener: Callable[[Node], None]) -> None:
        self._join_listeners.append(listener)

    def on_node_leave(self, listener: Callable[[Node], None]) -> None:
        self._leave_listeners.append(listener)

    def __repr__(self) -> str:
        kinds: Dict[str, int] = {}
        for n in self._nodes.values():
            kinds[n.kind.value] = kinds.get(n.kind.value, 0) + 1
        return f"Platform({self.name!r}, nodes={kinds}, cores={self.total_cores})"
