"""Cloud provider connectors and elasticity (claim C6).

The paper: "COMPSs runtime also supports elasticity in clouds, federated
clouds and in SLURM managed clusters."  A :class:`CloudProvider` can provision
VM nodes after a startup delay and charges per node-second; an
:class:`ElasticityPolicy` watches scheduler pressure and decides when to scale
out/in.  Both operate in virtual time against a :class:`SimulationEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.infrastructure.platform import Platform
from repro.infrastructure.resources import Node, NodeKind, PowerProfile
from repro.simulation.engine import SimulationEngine


@dataclass
class VmTemplate:
    """The instance type a provider provisions."""

    cores: int = 8
    memory_mb: int = 32_000
    speed_factor: float = 1.0
    software: tuple = ("python",)
    power: PowerProfile = field(
        default_factory=lambda: PowerProfile(idle_watts=80.0, busy_watts_per_core=8.0)
    )


class CloudProvider:
    """A cloud connector: provisions and releases VM nodes in virtual time.

    Mirrors the paper's connector component "each bridging to each provider
    API"; here the API is the platform itself.  Provisioning takes
    ``startup_delay_s`` of virtual time (VM boot), and usage is billed per
    node-second so the elasticity bench (E8) can report cost.
    """

    def __init__(
        self,
        platform: Platform,
        engine: SimulationEngine,
        name: str = "cloud",
        template: Optional[VmTemplate] = None,
        startup_delay_s: float = 60.0,
        cost_per_node_second: float = 0.0001,
        max_nodes: int = 1_000,
        zone: str = "cloud",
    ) -> None:
        self.platform = platform
        self.engine = engine
        self.name = name
        self.template = template if template is not None else VmTemplate()
        self.startup_delay_s = startup_delay_s
        self.cost_per_node_second = cost_per_node_second
        self.max_nodes = max_nodes
        self.zone = zone
        self._next_id = 0
        self._provisioned: Dict[str, float] = {}  # node name -> provision time
        # Active = provisioned AND still on the platform.  Kept incrementally
        # (a leave listener catches out-of-band removals) so active_nodes /
        # ownership checks don't rescan the fleet per elasticity tick.
        self._active: Dict[str, None] = {}
        self._pending = 0
        self.total_cost = 0.0
        platform.on_node_leave(self._on_platform_leave)

    def _on_platform_leave(self, node: Node) -> None:
        # fail_node leaves the node listed (still "active" in the billing
        # sense, matching has_node); remove_node takes it off the platform.
        if not self.platform.has_node(node.name):
            self._active.pop(node.name, None)

    @property
    def active_nodes(self) -> List[str]:
        return list(self._active)

    @property
    def active_node_count(self) -> int:
        return len(self._active)

    def owns(self, node_name: str) -> bool:
        """O(1): is this VM active under this provider?"""
        return node_name in self._active

    @property
    def pending_nodes(self) -> int:
        return self._pending

    def request_nodes(
        self, count: int, on_ready: Optional[Callable[[Node], None]] = None
    ) -> int:
        """Ask for ``count`` new VMs; returns how many were actually started.

        Each VM joins the platform after the startup delay.  ``on_ready`` is
        called per node once it has joined (schedulers also learn via the
        platform's join listeners).
        """
        budget = self.max_nodes - len(self._provisioned) - self._pending
        granted = max(0, min(count, budget))
        for _ in range(granted):
            self._pending += 1
            vm_id = self._next_id
            self._next_id += 1
            self.engine.after(
                self.startup_delay_s,
                lambda vm_id=vm_id, cb=on_ready: self._boot(vm_id, cb),
                label=f"{self.name}-boot-{vm_id}",
            )
        return granted

    def _boot(self, vm_id: int, on_ready: Optional[Callable[[Node], None]]) -> None:
        self._pending -= 1
        node = Node(
            name=f"{self.name}-vm-{vm_id:04d}",
            kind=NodeKind.CLOUD,
            cores=self.template.cores,
            memory_mb=self.template.memory_mb,
            speed_factor=self.template.speed_factor,
            software=frozenset(self.template.software),
            power=self.template.power,
        )
        self.platform.add_node(node, zone=self.zone, at=self.engine.now)
        self._provisioned[node.name] = self.engine.now
        self._active[node.name] = None
        if on_ready is not None:
            on_ready(node)

    def release_node(self, node_name: str) -> None:
        """Terminate a VM: bill its lifetime and remove it from the platform."""
        if node_name not in self._provisioned:
            raise ValueError(f"{node_name!r} was not provisioned by {self.name!r}")
        started = self._provisioned.pop(node_name)
        self._active.pop(node_name, None)
        self.total_cost += (self.engine.now - started) * self.cost_per_node_second
        if self.platform.has_node(node_name):
            self.platform.remove_node(node_name, at=self.engine.now)

    def shutdown(self) -> None:
        """Release every VM still running (end-of-experiment accounting)."""
        for name in list(self._provisioned):
            self.release_node(name)


class ElasticityPolicy:
    """Reactive scale-out/scale-in controller.

    Scales out when the ready-task backlog per active core exceeds
    ``scale_out_backlog``; scales in idle VMs after ``idle_grace_s``.  The
    policy polls on a fixed period in virtual time — the same structure as
    COMPSs' resource optimizer, reduced to its observable behaviour.
    """

    def __init__(
        self,
        provider: CloudProvider,
        engine: SimulationEngine,
        backlog_fn: Callable[[], int],
        idle_nodes_fn: Callable[[], List[str]],
        period_s: float = 30.0,
        scale_out_backlog: float = 2.0,
        max_step: int = 4,
        idle_grace_s: float = 120.0,
        min_nodes: int = 0,
    ) -> None:
        self.provider = provider
        self.engine = engine
        self.backlog_fn = backlog_fn
        self.idle_nodes_fn = idle_nodes_fn
        self.period_s = period_s
        self.scale_out_backlog = scale_out_backlog
        self.max_step = max_step
        self.idle_grace_s = idle_grace_s
        self.min_nodes = min_nodes
        self._idle_since: Dict[str, float] = {}
        self._running = False
        self.scale_out_actions = 0
        self.scale_in_actions = 0

    def start(self) -> None:
        """Begin polling; call before ``engine.run()``."""
        self._running = True
        self.engine.after(self.period_s, self._tick, label="elasticity-tick")

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        backlog = self.backlog_fn()
        active = self.provider.active_nodes
        capacity = max(
            1,
            sum(
                self.provider.platform.node(n).cores
                for n in active
                if self.provider.platform.has_node(n)
            ),
        )
        if backlog / capacity > self.scale_out_backlog:
            want = min(self.max_step, 1 + backlog // (self.provider.template.cores * 4))
            granted = self.provider.request_nodes(int(want))
            if granted:
                self.scale_out_actions += 1
        else:
            self._maybe_scale_in(active)
        if self._running:
            self.engine.after(self.period_s, self._tick, label="elasticity-tick")

    def _maybe_scale_in(self, active: List[str]) -> None:
        now = self.engine.now
        idle = set(self.idle_nodes_fn())
        for name in active:
            if name in idle:
                self._idle_since.setdefault(name, now)
            else:
                self._idle_since.pop(name, None)
        releasable = [
            name
            for name, since in self._idle_since.items()
            if now - since >= self.idle_grace_s
        ]
        for name in releasable:
            if self.provider.active_node_count <= self.min_nodes:
                break
            self._idle_since.pop(name, None)
            self.provider.release_node(name)
            self.scale_in_actions += 1
