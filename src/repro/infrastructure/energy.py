"""Energy accounting over simulated schedules.

The paper (§IV, §VI-C) wants runtimes that optimize "both in terms of
performance and energy".  The accountant integrates each node's linear power
model over its busy/idle intervals, which is enough to *rank* scheduling
policies by energy (experiment E9) even though absolute joules are synthetic.
"""

from __future__ import annotations

from typing import Dict, List

from repro.infrastructure.resources import Node


class EnergyAccountant:
    """Tracks per-node busy core-seconds and integrates power over time.

    Usage: call :meth:`record_busy` for every executed task (the simulated
    executor does this), then :meth:`total_energy_joules` with the schedule
    makespan.  Idle power is charged for the whole horizon on powered-on
    nodes; busy power is charged per core-second of task execution.

    Only the per-node *aggregate* core-seconds are kept — every consumer
    (energy integration, utilization tracing) reads the sum, so storing an
    interval object per task would cost O(tasks) memory and allocator time
    for information nothing reads back.
    """

    def __init__(self) -> None:
        self._busy_core_seconds: Dict[str, float] = {}
        self._nodes: Dict[str, Node] = {}
        # Nodes powered off (released by elasticity) stop accruing idle power.
        self._power_on: Dict[str, List[tuple]] = {}

    def register_node(self, node: Node, on_since: float = 0.0) -> None:
        """Start charging idle power for ``node`` from ``on_since``."""
        self._nodes[node.name] = node
        self._power_on.setdefault(node.name, []).append([on_since, None])

    def power_off(self, node_name: str, at: float) -> None:
        """Stop charging idle power for a node at virtual time ``at``."""
        intervals = self._power_on.get(node_name, [])
        if intervals and intervals[-1][1] is None:
            intervals[-1][1] = at

    def record_busy(self, node_name: str, start: float, end: float, cores: int) -> None:
        """Record that ``cores`` cores on ``node_name`` were busy in [start, end)."""
        if end < start:
            raise ValueError(f"busy interval ends before it starts: {start} .. {end}")
        busy = self._busy_core_seconds
        busy[node_name] = busy.get(node_name, 0.0) + (end - start) * cores

    def busy_core_seconds(self, node_name: str) -> float:
        return self._busy_core_seconds.get(node_name, 0.0)

    def node_energy_joules(self, node_name: str, horizon: float) -> float:
        """Energy consumed by one node over [0, horizon]."""
        node = self._nodes.get(node_name)
        if node is None:
            return 0.0
        on_seconds = 0.0
        for start, end in self._power_on.get(node_name, []):
            stop = horizon if end is None else min(end, horizon)
            if stop > start:
                on_seconds += stop - start
        idle_energy = node.power.idle_watts * on_seconds
        busy_energy = node.power.busy_watts_per_core * self.busy_core_seconds(node_name)
        return idle_energy + busy_energy

    def total_energy_joules(self, horizon: float) -> float:
        """Total platform energy over [0, horizon] in joules."""
        return sum(self.node_energy_joules(name, horizon) for name in self._nodes)
