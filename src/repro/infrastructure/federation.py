"""Federated clouds (claim C6: "clouds, federated clouds").

A :class:`CloudFederation` fronts several :class:`CloudProvider` connectors
— the paper's "component that offers different connectors, each bridging to
each provider API" — and places VM requests across them by policy:
cheapest-first (the default) or fastest-boot-first, honouring per-provider
quotas and skipping exhausted providers.  The elasticity controller can
drive a federation exactly like a single provider.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.infrastructure.cloud import CloudProvider
from repro.infrastructure.resources import Node


class FederationError(RuntimeError):
    """Raised on invalid federation configuration or operations."""


class CloudFederation:
    """A multi-provider facade with a pluggable placement order."""

    CHEAPEST_FIRST = "cheapest-first"
    FASTEST_BOOT_FIRST = "fastest-boot-first"

    def __init__(
        self,
        providers: List[CloudProvider],
        placement: str = CHEAPEST_FIRST,
    ) -> None:
        if not providers:
            raise FederationError("federation needs at least one provider")
        names = [p.name for p in providers]
        if len(set(names)) != len(names):
            raise FederationError(f"duplicate provider names: {names}")
        if placement not in (self.CHEAPEST_FIRST, self.FASTEST_BOOT_FIRST):
            raise FederationError(f"unknown placement policy {placement!r}")
        self.providers = list(providers)
        self.placement = placement

    def _ordered(self) -> List[CloudProvider]:
        if self.placement == self.CHEAPEST_FIRST:
            return sorted(self.providers, key=lambda p: p.cost_per_node_second)
        return sorted(self.providers, key=lambda p: p.startup_delay_s)

    # ------------------------------------------------- provider-like facade

    @property
    def active_nodes(self) -> List[str]:
        return [n for p in self.providers for n in p.active_nodes]

    @property
    def pending_nodes(self) -> int:
        return sum(p.pending_nodes for p in self.providers)

    @property
    def total_cost(self) -> float:
        return sum(p.total_cost for p in self.providers)

    @property
    def template(self):
        """Template of the preferred provider (ElasticityPolicy sizing hint)."""
        return self._ordered()[0].template

    @property
    def platform(self):
        return self.providers[0].platform

    def request_nodes(
        self, count: int, on_ready: Optional[Callable[[Node], None]] = None
    ) -> int:
        """Spread a VM request over providers in placement order.

        Each provider grants up to its remaining quota; overflow spills to
        the next provider.  Returns the total granted.
        """
        remaining = count
        granted_total = 0
        for provider in self._ordered():
            if remaining <= 0:
                break
            granted = provider.request_nodes(remaining, on_ready=on_ready)
            granted_total += granted
            remaining -= granted
        return granted_total

    def release_node(self, node_name: str) -> None:
        """Route a release to whichever provider owns the VM."""
        for provider in self.providers:
            if provider.owns(node_name):
                provider.release_node(node_name)
                return
        raise FederationError(f"{node_name!r} is not owned by any federated provider")

    def shutdown(self) -> None:
        for provider in self.providers:
            provider.shutdown()

    def owner_of(self, node_name: str) -> Optional[str]:
        # O(providers) dict-membership probes, not O(providers x nodes)
        # list scans — owner_of sits on the scale-in path under churn.
        for provider in self.providers:
            if provider.owns(node_name):
                return provider.name
        return None

    def nodes_by_provider(self) -> Dict[str, List[str]]:
        return {p.name: list(p.active_nodes) for p in self.providers}
