"""Prefab platform builders: HPC clusters and fog-to-cloud continuums.

These mirror the two concrete deployments in the paper's §VI: MareNostrum-like
supercomputers (48-core nodes, fast interconnect) for the GUIDANCE and
NMMB-Monarch case studies, and the OpenFog-style edge/fog/cloud stack of
Fig. 5 for the mF2C agents work.
"""

from __future__ import annotations

from typing import List, Optional

from repro.infrastructure.network import Link, NetworkTopology
from repro.infrastructure.platform import Platform
from repro.infrastructure.resources import Node, NodeKind, PowerProfile


def make_hpc_cluster(
    num_nodes: int,
    cores_per_node: int = 48,
    memory_mb_per_node: int = 96_000,
    name: str = "marenostrum-sim",
    nodes_per_rack: int = 24,
    software: tuple = ("mpi", "python"),
) -> Platform:
    """Build a MareNostrum-like cluster: racks of fat nodes on a fast fabric.

    Defaults approximate MareNostrum 4 (48 cores, 96 GB per node), the machine
    the GUIDANCE case study ran on (claim C1: 100 nodes = 4,800 cores).
    """
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be > 0, got {num_nodes}")
    network = NetworkTopology(
        # Intra-rack: ~100 Gbit/s fabric, microsecond latency.
        intra_zone_link=Link(latency_s=1e-6, bandwidth_bps=100e9 / 8),
        # Cross-rack: same fabric, slightly higher latency.
        default_link=Link(latency_s=5e-6, bandwidth_bps=100e9 / 8),
    )
    platform = Platform(name=name, network=network)
    power = PowerProfile(idle_watts=150.0, busy_watts_per_core=6.0)
    for i in range(num_nodes):
        rack = f"rack-{i // nodes_per_rack}"
        platform.add_node(
            Node(
                name=f"{name}-node-{i:04d}",
                kind=NodeKind.HPC,
                cores=cores_per_node,
                memory_mb=memory_mb_per_node,
                speed_factor=1.0,
                software=frozenset(software),
                power=power,
            ),
            zone=rack,
        )
    return platform


def make_fog_platform(
    num_edge: int = 4,
    num_fog: int = 3,
    num_cloud: int = 2,
    name: str = "fog-to-cloud",
    fog_battery_joules: Optional[float] = 50_000.0,
) -> Platform:
    """Build the three-layer OpenFog architecture of Fig. 5.

    Edge devices are tiny (sensors with a weak core), fog devices are
    phone/tablet class (battery-powered), cloud nodes are big VMs.  The WAN
    between fog and cloud is slow relative to the fog-local network, which is
    what makes the offloading trade-off (E6) non-trivial.
    """
    network = NetworkTopology(
        # Fog-area local network: WiFi-class.
        intra_zone_link=Link(latency_s=2e-3, bandwidth_bps=100e6 / 8),
        default_link=Link(latency_s=50e-3, bandwidth_bps=20e6 / 8),
    )
    # Cloud-internal network is fast.
    network.connect("cloud", "cloud", Link(latency_s=0.5e-3, bandwidth_bps=10e9 / 8))
    # Fog <-> cloud WAN.
    wan = Link(latency_s=40e-3, bandwidth_bps=50e6 / 8)
    network.connect("fog-area", "cloud", wan)

    platform = Platform(name=name, network=network)
    for i in range(num_edge):
        platform.add_node(
            Node(
                name=f"edge-{i}",
                kind=NodeKind.EDGE,
                cores=1,
                memory_mb=512,
                speed_factor=0.1,
                power=PowerProfile(idle_watts=1.0, busy_watts_per_core=2.0),
                battery_joules=5_000.0,
            ),
            zone="fog-area",
        )
    for i in range(num_fog):
        platform.add_node(
            Node(
                name=f"fog-{i}",
                kind=NodeKind.FOG,
                cores=4,
                memory_mb=4_000,
                speed_factor=0.25,
                power=PowerProfile(idle_watts=2.0, busy_watts_per_core=3.0),
                battery_joules=fog_battery_joules,
            ),
            zone="fog-area",
        )
    for i in range(num_cloud):
        platform.add_node(
            Node(
                name=f"cloud-{i}",
                kind=NodeKind.CLOUD,
                cores=16,
                memory_mb=64_000,
                speed_factor=1.0,
                power=PowerProfile(idle_watts=120.0, busy_watts_per_core=8.0),
            ),
            zone="cloud",
        )
    return platform


def hpc_node_names(platform: Platform) -> List[str]:
    """Names of all HPC nodes in a platform (test helper)."""
    return [n.name for n in platform.nodes_of_kind(NodeKind.HPC)]
