"""Network topology and data-transfer model.

The topology is a latency/bandwidth description between *zones* (groups of
nodes: a rack, a fog area, a cloud region).  Transfer time for a payload is

    latency(src_zone, dst_zone) + size_bytes / bandwidth(src_zone, dst_zone)

which is coarse but captures the property the paper's locality claims (C4)
depend on: moving data across the continuum costs orders of magnitude more
than reading it where it lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class Link:
    """Directed connectivity between two zones."""

    latency_s: float
    bandwidth_bps: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency_s}")
        if self.bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth_bps}")

    def transfer_time(self, size_bytes: float) -> float:
        """Seconds needed to move ``size_bytes`` over this link."""
        if size_bytes < 0:
            raise ValueError(f"size must be >= 0, got {size_bytes}")
        if size_bytes == 0:
            return 0.0
        return self.latency_s + size_bytes / self.bandwidth_bps

    def coalesced_transfer_time(self, total_bytes: float) -> float:
        """Seconds for a batch of payloads sharing this link.

        One latency charge for the whole batch plus the summed bandwidth
        term: the transfers ride one connection setup and split the link's
        bandwidth, which is both cheaper to evaluate and physically more
        sensible than pricing each payload as if it had the link to itself.
        """
        return self.transfer_time(total_bytes)


@dataclass
class TransferRecord:
    """One completed (simulated) data movement, kept for the metrics layer."""

    src_node: str
    dst_node: str
    size_bytes: float
    start_time: float
    duration: float
    datum: str = ""


#: Link used when source and destination are the same node: in-memory access.
LOCAL_LINK = Link(latency_s=0.0, bandwidth_bps=float("inf"))


class NetworkTopology:
    """Zone-based network model.

    Nodes are assigned to zones; links connect zone pairs.  A same-zone
    default link (e.g. rack-local 10 GbE) applies within a zone, and an
    explicit link or the ``default_link`` applies across zones.
    """

    def __init__(
        self,
        intra_zone_link: Link = Link(latency_s=50e-6, bandwidth_bps=10e9 / 8),
        default_link: Link = Link(latency_s=20e-3, bandwidth_bps=1e9 / 8),
    ) -> None:
        self._node_zone: Dict[str, str] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self.intra_zone_link = intra_zone_link
        self.default_link = default_link
        self.transfers: List[TransferRecord] = []
        # Running totals so the properties below are O(1); the record list
        # itself is kept for the metrics layer (tracing, Gantt, Paraver).
        self._total_bytes_moved = 0.0
        self._remote_transfer_count = 0
        # Memoized (src_node, dst_node) -> Link resolution.  Route lookup is
        # on the stage-in hot path (once per holder per input datum);
        # topology mutations bump ``topology_version`` and drop the cache.
        self._route_cache: Dict[Tuple[str, str], Link] = {}
        self.topology_version = 0

    def _invalidate_routes(self) -> None:
        self.topology_version += 1
        if self._route_cache:
            self._route_cache.clear()

    def add_node(self, node_name: str, zone: str) -> None:
        """Place ``node_name`` in ``zone`` (re-placing is allowed).

        Every route-affecting mutation — first placement *and* zone
        reassignment — bumps ``topology_version`` so cached routes (here
        and in :class:`~repro.scheduling.locations.TransferPlanner`) are
        invalidated; a re-add with an unchanged zone is a no-op and leaves
        the caches intact.
        """
        if self._node_zone.get(node_name) == zone:
            return
        self._node_zone[node_name] = zone
        self._invalidate_routes()

    def add_nodes(self, node_names: Iterable[str], zone: str) -> None:
        for name in node_names:
            self.add_node(name, zone)

    def zone_of(self, node_name: str) -> str:
        """Return the zone a node belongs to (default zone if unplaced)."""
        return self._node_zone.get(node_name, "default")

    def connect(self, zone_a: str, zone_b: str, link: Link, symmetric: bool = True) -> None:
        """Install a link between two zones."""
        self._links[(zone_a, zone_b)] = link
        if symmetric:
            self._links[(zone_b, zone_a)] = link
        self._invalidate_routes()

    def link_between(self, src_node: str, dst_node: str) -> Link:
        """Resolve the link used for a transfer from src to dst node (cached)."""
        if src_node == dst_node:
            return LOCAL_LINK
        key = (src_node, dst_node)
        link = self._route_cache.get(key)
        if link is None:
            src_zone = self.zone_of(src_node)
            dst_zone = self.zone_of(dst_node)
            if src_zone == dst_zone:
                link = self.intra_zone_link
            else:
                link = self._links.get((src_zone, dst_zone), self.default_link)
            self._route_cache[key] = link
        return link

    def transfer_time(self, src_node: str, dst_node: str, size_bytes: float) -> float:
        """Seconds to move ``size_bytes`` from src to dst (0 if same node)."""
        return self.link_between(src_node, dst_node).transfer_time(size_bytes)

    # ------------------------------------------------------- zone structure
    #
    # The sharded simulation engine partitions the platform by zone and
    # derives its conservative lookahead from the latency structure below:
    # an event produced in zone A cannot affect zone B sooner than the
    # effective (shortest-path) latency from A to B, so each zone's clock
    # may safely run ahead of the others by that margin.

    def zones(self) -> List[str]:
        """All zones with at least one placed node, in first-placement order."""
        seen: Dict[str, None] = {}
        for zone in self._node_zone.values():
            seen.setdefault(zone)
        return list(seen)

    def zone_link(self, src_zone: str, dst_zone: str) -> Link:
        """The direct link used between two zones (intra-zone for A->A)."""
        if src_zone == dst_zone:
            return self.intra_zone_link
        return self._links.get((src_zone, dst_zone), self.default_link)

    def zone_latency_matrix(
        self, zones: Optional[List[str]] = None
    ) -> Dict[Tuple[str, str], float]:
        """Effective latency between every zone pair (Floyd-Warshall).

        The *direct* link latency between two zones over-states how soon one
        zone can influence another when a cheaper relay exists (A->C->B with
        two 1 ms hops undercuts a 20 ms default A->B link) — and an event
        relayed through C's queue really can arrive that early.  A lookahead
        bound must therefore use the all-pairs shortest-path closure, not
        the raw link table.  Diagonal entries are 0: a zone influences
        itself immediately.
        """
        names = zones if zones is not None else self.zones()
        dist: Dict[Tuple[str, str], float] = {}
        for a in names:
            for b in names:
                dist[(a, b)] = 0.0 if a == b else self.zone_link(a, b).latency_s
        for via in names:
            for a in names:
                through = dist[(a, via)]
                for b in names:
                    relayed = through + dist[(via, b)]
                    if relayed < dist[(a, b)]:
                        dist[(a, b)] = relayed
        return dist

    def min_inter_zone_latency(self) -> float:
        """Smallest effective latency between two *distinct* zones.

        This is the platform-wide conservative lookahead horizon: no event
        can cross any zone boundary faster.  Returns ``inf`` when fewer
        than two zones exist (nothing to synchronize with).
        """
        matrix = self.zone_latency_matrix()
        best = float("inf")
        for (a, b), latency in matrix.items():
            if a != b and latency < best:
                best = latency
        return best

    def record_transfer(
        self,
        src_node: str,
        dst_node: str,
        size_bytes: float,
        start_time: float,
        duration: float,
        datum: str = "",
    ) -> TransferRecord:
        """Log a completed transfer for the metrics layer and return it."""
        record = TransferRecord(
            src_node=src_node,
            dst_node=dst_node,
            size_bytes=size_bytes,
            start_time=start_time,
            duration=duration,
            datum=datum,
        )
        self.transfers.append(record)
        if src_node != dst_node:
            self._total_bytes_moved += size_bytes
            self._remote_transfer_count += 1
        return record

    @property
    def total_bytes_moved(self) -> float:
        """Bytes moved across distinct nodes (locality metric for E4/E5)."""
        return self._total_bytes_moved

    @property
    def remote_transfer_count(self) -> int:
        return self._remote_transfer_count
