"""Container platforms (§II: "some systems are starting to support
containers"; §VI-A: COMPSs runs on "containerized clusters" [19]; §VI-B:
agents are "executed in a Docker container").

The model captures what scheduling actually sees of containers:

* an image registry with named images of a given size;
* per-node image caches — running a task whose image is cached starts
  immediately; a cold node first *pulls* the image (registry → node over
  the platform network);
* a :class:`ContainerRuntime` that tracks pulls and answers "how long until
  a container of image X can start on node Y", which the simulated executor
  can fold into task stage-in via :func:`container_stage_in`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.infrastructure.platform import Platform


class ContainerError(RuntimeError):
    """Raised for unknown images or misconfigured registries."""


@dataclass(frozen=True)
class ContainerImage:
    """A named, versioned container image."""

    name: str
    size_bytes: float = 500e6
    start_overhead_s: float = 1.0  # container cold-start once the image is local

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("image size must be positive")
        if self.start_overhead_s < 0:
            raise ValueError("start overhead must be >= 0")


class ImageRegistry:
    """The registry service images are pulled from (one per platform)."""

    def __init__(self, registry_node: str) -> None:
        self.registry_node = registry_node
        self._images: Dict[str, ContainerImage] = {}

    def push(self, image: ContainerImage) -> None:
        self._images[image.name] = image

    def get(self, name: str) -> ContainerImage:
        image = self._images.get(name)
        if image is None:
            raise ContainerError(f"unknown image {name!r}; push it to the registry first")
        return image

    @property
    def image_names(self) -> Set[str]:
        return set(self._images)


class ContainerRuntime:
    """Per-platform container state: node-local image caches and pulls."""

    def __init__(self, platform: Platform, registry: ImageRegistry) -> None:
        self.platform = platform
        self.registry = registry
        self._cached: Dict[str, Set[str]] = {}  # node -> image names
        self.pull_count = 0
        self.pulled_bytes = 0.0

    def is_cached(self, node_name: str, image_name: str) -> bool:
        return image_name in self._cached.get(node_name, set())

    def preload(self, node_name: str, image_name: str) -> None:
        """Warm a node's cache without charging a pull (e.g. baked AMIs)."""
        self.registry.get(image_name)
        self._cached.setdefault(node_name, set()).add(image_name)

    def evict(self, node_name: str, image_name: str) -> None:
        self._cached.get(node_name, set()).discard(image_name)

    def start_delay(self, node_name: str, image_name: str) -> float:
        """Seconds until a container of this image can start on the node.

        Charges a registry→node pull when the image is cold, then marks it
        cached (subsequent containers on that node start warm).
        """
        image = self.registry.get(image_name)
        if self.is_cached(node_name, image_name):
            return image.start_overhead_s
        pull_time = self.platform.network.transfer_time(
            self.registry.registry_node, node_name, image.size_bytes
        )
        self.pull_count += 1
        self.pulled_bytes += image.size_bytes
        self._cached.setdefault(node_name, set()).add(image_name)
        return pull_time + image.start_overhead_s


def container_stage_in(runtime: ContainerRuntime, image_name: Optional[str]):
    """Build a SimulatedExecutor stage-in hook charging container starts.

    Returns a callable ``(instance, node_name) -> extra_seconds`` suitable
    for :attr:`SimulatedExecutor.extra_stage_in`.
    """

    def hook(instance, node_name: str) -> float:
        if image_name is None:
            return 0.0
        return runtime.start_delay(node_name, image_name)

    return hook
