"""Execution backends (DESIGN.md S5/S6-facing).

Two backends share the scheduler and graph machinery:

* :class:`LocalExecutor` really runs Python callables on a thread pool with
  per-node core/memory accounting — the backend behind the public API;
* :class:`SimulatedExecutor` advances a discrete-event clock over task
  profiles — the substitute for the paper's physical testbeds.
"""

from repro.executor.local import LocalExecutor
from repro.executor.simulated import SimulatedExecutor, SimulationReport
from repro.executor.workflow_builder import SimWorkflowBuilder

__all__ = [
    "LocalExecutor",
    "SimulatedExecutor",
    "SimulationReport",
    "SimWorkflowBuilder",
]
