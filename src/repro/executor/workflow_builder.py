"""Builder for simulated workflows: profiled task DAGs without decorators.

Benchmarks describe workloads as tasks with synthetic profiles (duration,
cores, memory, named data inputs/outputs).  The builder applies the same
RAW/WAR/WAW dependency semantics the Access Processor applies to real
programs, so the simulated graphs exercise the identical graph machinery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.constraints import ResolvedRequirements
from repro.core.graph import SimProfile, TaskGraph, TaskInstance


@dataclass
class _DatumState:
    writer: Optional[int] = None
    readers: List[int] = field(default_factory=list)
    size_bytes: float = 0.0


class SimWorkflowBuilder:
    """Accumulates profiled tasks into a :class:`TaskGraph`.

    Data dependencies are derived from datum names: a task reading ``"x"``
    depends on the last task that declared ``"x"`` among its outputs (RAW);
    re-writing a datum adds WAR/WAW edges exactly like the real AP.
    """

    def __init__(self) -> None:
        self.graph = TaskGraph()
        self._data: Dict[str, _DatumState] = {}
        self._ids = itertools.count(1)
        #: sizes of data that exist before the workflow starts (initial data)
        self.initial_data: Dict[str, float] = {}

    def add_initial_datum(self, name: str, size_bytes: float) -> None:
        """Declare a datum that exists before any task runs (e.g. input files)."""
        self._data[name] = _DatumState(size_bytes=float(size_bytes))
        self.initial_data[name] = float(size_bytes)

    def add_task(
        self,
        label: str,
        duration: float,
        inputs: Iterable[str] = (),
        outputs: Optional[Mapping[str, float]] = None,
        cores: int = 1,
        memory_mb: int = 0,
        gpus: int = 0,
        nodes: int = 1,
        software: Iterable[str] = (),
        depends_on: Iterable[int] = (),
    ) -> TaskInstance:
        """Append a task; returns its instance (its ``task_id`` can be used
        in later ``depends_on`` for pure control dependencies)."""
        task_id = next(self._ids)
        deps: Set[int] = set(depends_on)
        reads: List[str] = []
        writes: List[str] = []
        input_sizes: Dict[str, float] = {}
        output_sizes: Dict[str, float] = {}

        for name in inputs:
            state = self._data.get(name)
            if state is None:
                raise ValueError(
                    f"task {label!r} reads unknown datum {name!r}; declare it "
                    "with add_initial_datum or produce it with an earlier task"
                )
            if state.writer is not None:
                deps.add(state.writer)
            state.readers.append(task_id)
            reads.append(name)
            input_sizes[name] = state.size_bytes

        for name, size in (outputs or {}).items():
            state = self._data.get(name)
            if state is not None:
                if state.writer is not None:
                    deps.add(state.writer)
                deps.update(r for r in state.readers if r != task_id)
            self._data[name] = _DatumState(writer=task_id, size_bytes=float(size))
            writes.append(name)
            output_sizes[name] = float(size)

        deps.discard(task_id)
        instance = TaskInstance(
            task_id=task_id,
            label=f"{label}#{task_id}",
            requirements=ResolvedRequirements(
                cores=cores,
                memory_mb=memory_mb,
                gpus=gpus,
                software=frozenset(software),
                nodes=nodes,
            ),
            reads=reads,
            writes=writes,
            profile=SimProfile(
                duration_s=duration,
                input_sizes=input_sizes,
                output_sizes=output_sizes,
            ),
        )
        self.graph.add_task(instance, depends_on=deps)
        return instance

    def datum_size(self, name: str) -> float:
        return self._data[name].size_bytes
