"""Builder for simulated workflows: profiled task DAGs without decorators.

Benchmarks describe workloads as tasks with synthetic profiles (duration,
cores, memory, named data inputs/outputs).  The builder applies the same
RAW/WAR/WAW dependency semantics the Access Processor applies to real
programs, so the simulated graphs exercise the identical graph machinery.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.access_processor import WAR_FANIN_BARRIER_THRESHOLD
from repro.core.constraints import ResolvedRequirements
from repro.core.graph import (
    SimProfile,
    TaskGraph,
    TaskInstance,
    make_barrier_instance,
)


class _DatumState:
    """Per-datum dependency state; slotted — one per datum in 200k+ builds."""

    __slots__ = ("writer", "readers", "size_bytes", "barrier")

    def __init__(
        self,
        writer: Optional[int] = None,
        readers: Optional[List[int]] = None,
        size_bytes: float = 0.0,
    ) -> None:
        self.writer = writer
        self.readers = readers if readers is not None else []
        self.size_bytes = size_bytes
        #: last flushed WAR fan-in barrier covering readers before the tail
        self.barrier: Optional[int] = None


class SimWorkflowBuilder:
    """Accumulates profiled tasks into a :class:`TaskGraph`.

    Data dependencies are derived from datum names: a task reading ``"x"``
    depends on the last task that declared ``"x"`` among its outputs (RAW);
    re-writing a datum adds WAR/WAW edges exactly like the real AP —
    including the WAR fan-in barrier collapse, so a simulated
    read-by-thousands-then-write datum costs the writer O(1) edges.
    """

    def __init__(self, war_fanin_threshold: int = WAR_FANIN_BARRIER_THRESHOLD) -> None:
        self.graph = TaskGraph()
        self._data: Dict[str, _DatumState] = {}
        self._ids = itertools.count(1)
        self.war_fanin_threshold = war_fanin_threshold
        # Simulated workloads submit thousands of tasks sharing a handful of
        # distinct resource demands; interning the frozen requirements
        # objects keeps per-task build allocations (and the blocked-reqs
        # dispatch skip, which hashes them) cheap.
        self._requirements_cache: Dict[tuple, ResolvedRequirements] = {}
        #: sizes of data that exist before the workflow starts (initial data)
        self.initial_data: Dict[str, float] = {}

    def add_initial_datum(self, name: str, size_bytes: float) -> None:
        """Declare a datum that exists before any task runs (e.g. input files)."""
        self._data[name] = _DatumState(size_bytes=float(size_bytes))
        self.initial_data[name] = float(size_bytes)

    def add_task(
        self,
        label: str,
        duration: float,
        inputs: Iterable[str] = (),
        outputs: Optional[Mapping[str, float]] = None,
        cores: int = 1,
        memory_mb: int = 0,
        gpus: int = 0,
        nodes: int = 1,
        software: Iterable[str] = (),
        depends_on: Iterable[int] = (),
        deterministic: bool = True,
    ) -> TaskInstance:
        """Append a task; returns its instance (its ``task_id`` can be used
        in later ``depends_on`` for pure control dependencies).

        ``deterministic=False`` opts the task out of content-addressed
        dedup (:func:`repro.core.compile.compile_graph`): identical inputs
        do not imply identical outputs, so twin submissions must both run.
        """
        task_id = next(self._ids)
        deps: Set[int] = set(depends_on)
        reads: List[str] = []
        writes: List[str] = []
        input_sizes: Dict[str, float] = {}
        output_sizes: Dict[str, float] = {}

        output_names = outputs or {}
        for name in inputs:
            state = self._data.get(name)
            if state is None:
                raise ValueError(
                    f"task {label!r} reads unknown datum {name!r}; declare it "
                    "with add_initial_datum or produce it with an earlier task"
                )
            if state.writer is not None:
                deps.add(state.writer)
            # Flush a full reader tail behind a barrier before appending
            # this reader — but never when this task also rewrites the
            # datum (the barrier id would postdate this task's own id; the
            # write consumes the bounded tail directly instead).
            if (
                name not in output_names
                and len(state.readers) >= self.war_fanin_threshold
            ):
                self._flush_war_barrier(name, state)
            state.readers.append(task_id)
            reads.append(name)
            input_sizes[name] = state.size_bytes

        for name, size in output_names.items():
            state = self._data.get(name)
            if state is not None:
                if state.writer is not None:
                    deps.add(state.writer)
                if state.barrier is not None:
                    deps.add(state.barrier)
                deps.update(r for r in state.readers if r != task_id)
            # Fresh state per write: the O(1) reader-set swap.
            self._data[name] = _DatumState(writer=task_id, size_bytes=float(size))
            writes.append(name)
            output_sizes[name] = float(size)

        deps.discard(task_id)
        instance = TaskInstance(
            task_id=task_id,
            label=f"{label}#{task_id}",
            requirements=self._intern_requirements(
                cores, memory_mb, gpus, frozenset(software), nodes
            ),
            reads=reads,
            writes=writes,
            profile=SimProfile(
                duration_s=duration,
                input_sizes=input_sizes,
                output_sizes=output_sizes,
                deterministic=deterministic,
            ),
        )
        self.graph.add_task(instance, depends_on=deps)
        return instance

    def _flush_war_barrier(self, name: str, state: _DatumState) -> None:
        """Collapse the datum's reader tail behind one structural node."""
        barrier_id = next(self._ids)
        barrier_deps: Set[int] = set(state.readers)
        if state.barrier is not None:
            barrier_deps.add(state.barrier)
        self.graph.add_task(
            make_barrier_instance(barrier_id, f"war-barrier/{name}"), barrier_deps
        )
        state.barrier = barrier_id
        state.readers = []

    def _intern_requirements(
        self,
        cores: int,
        memory_mb: int,
        gpus: int,
        software: frozenset,
        nodes: int,
    ) -> ResolvedRequirements:
        key = (cores, memory_mb, gpus, software, nodes)
        cached = self._requirements_cache.get(key)
        if cached is None:
            cached = ResolvedRequirements(
                cores=cores,
                memory_mb=memory_mb,
                gpus=gpus,
                software=software,
                nodes=nodes,
            )
            self._requirements_cache[key] = cached
        return cached

    def datum_size(self, name: str) -> float:
        return self._data[name].size_bytes
