"""Real execution backend: a thread pool with capacity-aware dispatch.

This is the COMPSs worker layer collapsed into one process: logical nodes
still exist (the scheduler enforces their core/memory limits), but task
functions execute on threads sharing the interpreter, which is also how the
"single shared memory space" illusion of the paper trivially holds.

Threading model: the runtime's condition variable guards graph + ledger;
worker threads call back into the runtime on completion.  ``kick_locked`` —
the only dispatch path — must be called with that lock held.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.core.futures import Future
from repro.core.graph import TaskInstance
from repro.scheduling.scheduler import BlockedDemandFrontier

if TYPE_CHECKING:
    from repro.core.runtime import Runtime


class LocalExecutor:
    """Dispatches ready tasks to a thread pool under ledger capacity."""

    def __init__(
        self,
        runtime: "Runtime",
        pool_size: Optional[int] = None,
        dispatch_window: int = 64,
    ) -> None:
        self.runtime = runtime
        if pool_size is None:
            pool_size = min(128, max(2, runtime.platform.total_cores))
        self.pool_size = pool_size
        # Stop scanning the ready queue after this many consecutive failed
        # placements: bounds each kick at O(placed + window) instead of
        # O(ready), which is what keeps a million-task submission loop from
        # re-walking the whole backlog on every submit.
        self.dispatch_window = dispatch_window
        self._pool: Optional[ThreadPoolExecutor] = None
        self._shutdown = False

    def start(self) -> None:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.pool_size, thread_name_prefix="repro-worker"
            )
        self._shutdown = False

    def shutdown(self) -> None:
        self._shutdown = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def kick_locked(self) -> None:
        """Place and launch as many ready tasks as capacity allows.

        Must be called with the runtime condition lock held.
        """
        if self._pool is None or self._shutdown:
            return
        graph = self.runtime.graph
        scheduler = self.runtime.scheduler
        ledger = scheduler.ledger
        window = self.dispatch_window
        consecutive_failures = 0
        # Demands that failed for lack of capacity this pass.  The lock is
        # held, so capacity only shrinks while this pass allocates — any
        # demand needing at least as much as one that already failed cannot
        # become placeable before the pass ends, and skipping it collapses
        # blocked backlogs (even heterogeneous ones, e.g. per-task dynamic
        # memory) to one frontier comparison per task.
        blocked = BlockedDemandFrontier()
        for instance in graph.iter_ready():
            if ledger.total_free_cores <= 0:
                break
            req = instance.requirements
            if blocked.covers(req):
                consecutive_failures += 1
                if consecutive_failures >= window:
                    break
                continue
            nodes = scheduler.try_place(instance)
            if nodes is None:
                if scheduler.last_failure_was_capacity:
                    blocked.add(req)
                consecutive_failures += 1
                if consecutive_failures >= window:
                    break
                continue
            consecutive_failures = 0
            graph.mark_running(instance.task_id, nodes[0], now=self.runtime.now)
            instance.assigned_nodes = nodes
            self._pool.submit(self._run, instance)

    # ------------------------------------------------------------ execution

    def _run(self, instance: TaskInstance) -> None:
        from repro.core.runtime import mark_in_task

        try:
            kwargs = self._materialize_arguments(instance)
            mark_in_task(True)
            try:
                result = instance.fn(**kwargs)
            finally:
                mark_in_task(False)
        except BaseException as error:  # noqa: BLE001 - task code may raise anything
            self.runtime.on_task_failed(instance, error)
            return
        self.runtime.on_task_done(instance, result)

    @staticmethod
    def _materialize_arguments(instance: TaskInstance) -> Dict[str, Any]:
        """Substitute resolved futures into the task's keyword arguments."""
        kwargs = dict(instance.kwargs)
        copied_lists = set()
        for key, future in instance.future_args.items():
            value = future.value()  # producer finished: resolution is certain
            if isinstance(key, tuple):
                pname, index = key
                if pname not in copied_lists:
                    kwargs[pname] = list(kwargs[pname])
                    copied_lists.add(pname)
                kwargs[pname][index] = value
            else:
                kwargs[key] = value
        return kwargs
