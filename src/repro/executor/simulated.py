"""Discrete-event execution backend.

Runs a profiled :class:`TaskGraph` (built with :class:`SimWorkflowBuilder` or
the workload generators) against a :class:`Platform` in virtual time.  This
is the substitute substrate for the paper's physical testbeds (DESIGN.md §2):
it reproduces queueing, constraint packing, data movement, elasticity and
failures — the effects behind claims C1–C3 and C5–C7 — without the hardware.

Model choices (kept deliberately simple and documented):

* input fetches for a task happen in parallel, so the stage-in time is the
  *max* over missing inputs of their point-to-point transfer time;
* a task's compute time is ``profile.duration_s / node.speed_factor``;
* gang tasks (``nodes > 1``) hold their full allocation for the whole run;
* outputs are born on the node that ran the task (gang: on its head node)
  and registered with the data-location service for locality scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

if TYPE_CHECKING:
    from repro.intelligence.predictor import DurationPredictor

from repro.core.graph import TaskGraph, TaskInstance, TaskState
from repro.infrastructure.platform import Platform
from repro.infrastructure.resources import Node
from repro.scheduling.locations import DataLocationService
from repro.scheduling.policies import SchedulingPolicy
from repro.scheduling.scheduler import TaskScheduler
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event


class SimulatedExecutionError(RuntimeError):
    """Raised when the simulation ends with unrunnable tasks."""


@dataclass
class SimulationReport:
    """Outcome of one simulated execution."""

    makespan: float
    tasks_done: int
    tasks_failed: int
    tasks_cancelled: int
    bytes_transferred: float
    remote_transfers: int
    energy_joules: float
    resubmissions: int
    per_node_busy_seconds: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"makespan={self.makespan:.1f}s tasks={self.tasks_done} "
            f"failed={self.tasks_failed} moved={self.bytes_transferred / 1e9:.2f}GB "
            f"energy={self.energy_joules / 3.6e6:.3f}kWh "
            f"resubmissions={self.resubmissions}"
        )


class SimulatedExecutor:
    """Event-driven executor over a profiled task graph."""

    def __init__(
        self,
        graph: TaskGraph,
        platform: Platform,
        policy: Optional[SchedulingPolicy] = None,
        engine: Optional[SimulationEngine] = None,
        locations: Optional[DataLocationService] = None,
        initial_data: Optional[Dict[str, float]] = None,
        initial_data_nodes: Optional[Dict[str, str]] = None,
        recovery_enabled: bool = True,
        max_attempts: int = 3,
        dispatch_window: int = 64,
        predictor: Optional["DurationPredictor"] = None,
        extra_stage_in=None,
    ) -> None:
        self.graph = graph
        self.platform = platform
        self.engine = engine if engine is not None else SimulationEngine()
        self.locations = locations if locations is not None else DataLocationService()
        self.scheduler = TaskScheduler(platform, policy)
        self.recovery_enabled = recovery_enabled
        self.max_attempts = max_attempts
        # Stop scanning the ready queue after this many consecutive failed
        # placements: bounds dispatch cost at O(placed + window) per event
        # instead of O(ready), which is what makes 100-node x 10^4-task
        # simulations (E1) tractable.  Large enough that realistic
        # heterogeneous mixes don't suffer head-of-line blocking.
        self.dispatch_window = dispatch_window
        # Optional intelligent-runtime hook: completed tasks feed an online
        # duration model that prediction-driven policies consult (§VI-C).
        self.predictor = predictor
        # Optional extra stage-in charge: callable(instance, node) -> seconds,
        # e.g. container image pulls (repro.infrastructure.containers).
        self.extra_stage_in = extra_stage_in
        self.resubmissions = 0
        self._completion_events: Dict[int, Event] = {}
        self._busy_seconds: Dict[str, float] = {}
        self._dispatch_scheduled = False
        # Initial data (input files): place on the declared node, or spread
        # round-robin across alive nodes when unspecified.
        if initial_data:
            nodes = [n.name for n in platform.alive_nodes]
            placements = initial_data_nodes or {}
            for index, (name, size) in enumerate(initial_data.items()):
                node = placements.get(name, nodes[index % len(nodes)])
                self.locations.publish(name, node, size_bytes=size)
        # New nodes (elasticity) should trigger a dispatch attempt.
        platform.on_node_join(lambda node: self._request_dispatch())

    # ------------------------------------------------------------------ run

    def run(self, until: Optional[float] = None) -> SimulationReport:
        """Execute the whole graph; returns the report at completion."""
        self._request_dispatch()
        self.engine.run(until=until)
        if not self.graph.finished:
            stuck = [
                t.label
                for t in self.graph.tasks
                if t.state in (TaskState.PENDING, TaskState.READY)
            ]
            raise SimulatedExecutionError(
                f"simulation drained with {len(stuck)} unrunnable tasks "
                f"(first few: {stuck[:5]}); check constraints vs platform"
            )
        makespan = max(
            (t.end_time for t in self.graph.tasks if t.end_time is not None),
            default=0.0,
        )
        return SimulationReport(
            makespan=makespan,
            tasks_done=self.graph.completed_count,
            tasks_failed=self.graph.failed_count,
            tasks_cancelled=self.graph.cancelled_count,
            bytes_transferred=self.platform.network.total_bytes_moved,
            remote_transfers=self.platform.network.remote_transfer_count,
            energy_joules=self.platform.energy.total_energy_joules(makespan),
            resubmissions=self.resubmissions,
            per_node_busy_seconds=dict(self._busy_seconds),
        )

    # ------------------------------------------------------------- dispatch

    def _request_dispatch(self) -> None:
        # Coalesce dispatch requests into one event per timestamp.
        if not self._dispatch_scheduled:
            self._dispatch_scheduled = True
            self.engine.after(0.0, self._dispatch, priority=10, label="dispatch")

    def _dispatch(self) -> None:
        self._dispatch_scheduled = False
        consecutive_failures = 0
        # Requirement signatures that failed for lack of capacity this pass.
        # Capacity only shrinks while a pass allocates (completions are
        # separate events), so an identical demand cannot become placeable
        # before the pass ends — skipping it is exact, and collapses the
        # re-walk of a blocked same-shaped prefix to one set lookup per task.
        blocked_reqs: Set[object] = set()
        for instance in self.graph.iter_ready():
            if self.scheduler.total_free_cores <= 0:
                break
            lost = [d for d in instance.reads if self.locations.is_lost(d)]
            if lost:
                self.graph.mark_failed(
                    instance.task_id,
                    RuntimeError(f"inputs {lost[:3]} lost and not persisted"),
                    now=self.engine.now,
                )
                if self.graph.finished:
                    self.engine.stop()
                continue
            if instance.requirements in blocked_reqs:
                consecutive_failures += 1
                if consecutive_failures >= self.dispatch_window:
                    break
                continue
            nodes = self.scheduler.try_place(instance)
            if nodes is None:
                if self.scheduler.last_failure_was_capacity:
                    blocked_reqs.add(instance.requirements)
                consecutive_failures += 1
                if consecutive_failures >= self.dispatch_window:
                    break
                continue
            consecutive_failures = 0
            self._start_task(instance, nodes)

    def _start_task(self, instance: TaskInstance, nodes: List[str]) -> None:
        head = nodes[0]
        now = self.engine.now
        self.graph.mark_running(instance.task_id, head, now=now)
        instance.assigned_nodes = nodes
        stage_in = self._stage_in_time(instance, head)
        if self.extra_stage_in is not None:
            stage_in += self.extra_stage_in(instance, head)
        node = self.platform.node(head)
        compute = (instance.profile.duration_s if instance.profile else 0.0) / node.speed_factor
        total = stage_in + compute
        event = self.engine.after(
            total,
            lambda tid=instance.task_id: self._complete_task(tid),
            label=f"finish-{instance.label}",
        )
        self._completion_events[instance.task_id] = event

    def _stage_in_time(self, instance: TaskInstance, node_name: str) -> float:
        """Parallel-fetch model: max transfer time over missing inputs."""
        worst = 0.0
        now = self.engine.now
        locations = self.locations
        network = self.platform.network
        for datum_id in instance.reads:
            holders = locations.holders_of(datum_id)
            if not holders or node_name in holders:
                continue
            size = locations.size_of(datum_id)
            # One transfer_time evaluation per holder (route lookups are
            # cached by the topology): track the running best instead of a
            # min() pass followed by a recomputation for the winner.
            best_src = None
            duration = float("inf")
            for src in holders:
                candidate = network.transfer_time(src, node_name, size)
                if candidate < duration:
                    duration = candidate
                    best_src = src
            network.record_transfer(
                best_src, node_name, size, start_time=now, duration=duration, datum=datum_id
            )
            # The fetched copy now also lives on the destination node.
            locations.publish(datum_id, node_name, size_bytes=size)
            worst = max(worst, duration)
        return worst

    def _complete_task(self, task_id: int) -> None:
        instance = self.graph.task(task_id)
        if instance.state is not TaskState.RUNNING:
            return  # stale completion after a failure-triggered requeue
        now = self.engine.now
        self._completion_events.pop(task_id, None)
        # Energy + utilization accounting over the full occupancy window.
        start = instance.start_time if instance.start_time is not None else now
        for node_name in instance.assigned_nodes:
            self.platform.energy.record_busy(
                node_name, start, now, instance.requirements.cores
            )
            self._busy_seconds[node_name] = self._busy_seconds.get(node_name, 0.0) + (
                now - start
            ) * 1.0
        # Outputs are born on the head node.
        head = instance.assigned_nodes[0]
        if instance.profile is not None:
            for datum_id, size in instance.profile.output_sizes.items():
                self.locations.publish(datum_id, head, size_bytes=size)
        if self.predictor is not None and instance.profile is not None:
            self.predictor.observe(
                instance.label,
                instance.profile.duration_s,
                size=sum(instance.profile.input_sizes.values()) or None,
            )
        self.scheduler.release(instance)
        self.graph.mark_done(task_id, now=now)
        if self.graph.finished:
            # Stop the engine even if periodic controllers (elasticity
            # policies) still have ticks queued: the workflow is done.
            self.engine.stop()
        else:
            self._request_dispatch()

    # -------------------------------------------------------------- failures

    def fail_node_at(self, time: float, node_name: str) -> None:
        """Inject a node failure at virtual ``time`` (call before run())."""
        self.engine.at(
            time,
            lambda: self._fail_node(node_name),
            priority=-10,  # failures preempt completions at the same instant
            label=f"fail-{node_name}",
        )

    def _fail_node(self, node_name: str) -> None:
        if not self.platform.has_node(node_name):
            return
        now = self.engine.now
        # Collect tasks running on the failed node before mutating anything.
        victims = [
            t
            for t in self.graph.tasks
            if t.state is TaskState.RUNNING and node_name in t.assigned_nodes
        ]
        self.platform.fail_node(node_name, at=now)
        self.locations.evict_node(node_name)
        for instance in victims:
            event = self._completion_events.pop(instance.task_id, None)
            if event is not None:
                event.cancel()
            # The (now gone) ledger entry was removed with the node; release
            # co-allocated capacity on surviving gang nodes.
            self.scheduler.release(instance)
            if self.recovery_enabled and self._inputs_recoverable(instance):
                if instance.attempts < self.max_attempts:
                    self.graph.requeue(instance.task_id)
                    self.resubmissions += 1
                else:
                    self.graph.mark_failed(
                        instance.task_id,
                        RuntimeError(
                            f"node {node_name} failed and task exceeded "
                            f"{self.max_attempts} attempts"
                        ),
                        now=now,
                    )
            else:
                self.graph.mark_failed(
                    instance.task_id,
                    RuntimeError(
                        f"node {node_name} failed"
                        + ("" if self.recovery_enabled else " (recovery disabled)")
                    ),
                    now=now,
                )
        # Not-yet-run tasks whose inputs were lost with the node can never
        # execute: fail them now so the run ends with an explicit verdict
        # instead of a drained-but-unfinished simulation.
        for instance in list(self.graph.tasks):
            if instance.state in (TaskState.PENDING, TaskState.READY):
                if any(self.locations.is_lost(d) for d in instance.reads):
                    if instance.state is TaskState.PENDING:
                        continue  # will be cancelled when its ancestor fails,
                        # or fail here once it becomes READY
                    self.graph.mark_failed(
                        instance.task_id,
                        RuntimeError(
                            f"inputs lost with node {node_name} and no "
                            "persistent copy exists"
                        ),
                        now=now,
                    )
        if self.graph.finished:
            self.engine.stop()
        else:
            self._request_dispatch()

    def _inputs_recoverable(self, instance: TaskInstance) -> bool:
        """Every input still has a copy on an alive node (or in a store)."""
        for datum_id in instance.reads:
            if self.locations.is_lost(datum_id):
                return False
            holders = self.locations.get_locations(datum_id)
            alive = {
                h
                for h in holders
                if self._holder_alive(h)
            }
            if holders and not alive:
                return False
        return True

    def _holder_alive(self, holder: str) -> bool:
        """A holder is alive if it is an alive platform node, or an external
        store location (e.g. a persistent backend) not modeled as a node."""
        if self.platform.has_node(holder):
            return self.platform.node(holder).alive
        return True
