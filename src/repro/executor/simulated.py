"""Discrete-event execution backend.

Runs a profiled :class:`TaskGraph` (built with :class:`SimWorkflowBuilder` or
the workload generators) against a :class:`Platform` in virtual time.  This
is the substitute substrate for the paper's physical testbeds (DESIGN.md §2):
it reproduces queueing, constraint packing, data movement, elasticity and
failures — the effects behind claims C1–C3 and C5–C7 — without the hardware.

Model choices (kept deliberately simple and documented):

* input fetches for a task happen in parallel, so the stage-in time is the
  *max* over missing inputs of their point-to-point transfer time;
* a task's compute time is ``profile.duration_s / node.speed_factor``;
* gang tasks (``nodes > 1``) hold their full allocation for the whole run;
* outputs are born on the node that ran the task (gang: on its head node)
  and registered with the data-location service for locality scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.intelligence.predictor import DurationPredictor

from repro.core.graph import TaskGraph, TaskInstance, TaskState
from repro.infrastructure.platform import Platform
from repro.infrastructure.resources import Node
from repro.scheduling.locations import DataLocationService, TransferPlanner
from repro.scheduling.policies import SchedulingPolicy
from repro.scheduling.scheduler import BlockedDemandFrontier, TaskScheduler
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event


class SimulatedExecutionError(RuntimeError):
    """Raised when the simulation ends with unrunnable tasks."""


def _no_shard(node_name: str) -> None:
    """Shard resolver for single-timeline engines: everything is unsharded."""
    return None


@dataclass
class SimulationReport:
    """Outcome of one simulated execution."""

    makespan: float
    tasks_done: int
    tasks_failed: int
    tasks_cancelled: int
    bytes_transferred: float
    remote_transfers: int
    energy_joules: float
    resubmissions: int
    per_node_busy_seconds: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"makespan={self.makespan:.1f}s tasks={self.tasks_done} "
            f"failed={self.tasks_failed} moved={self.bytes_transferred / 1e9:.2f}GB "
            f"energy={self.energy_joules / 3.6e6:.3f}kWh "
            f"resubmissions={self.resubmissions}"
        )


class SimulatedExecutor:
    """Event-driven executor over a profiled task graph."""

    def __init__(
        self,
        graph: TaskGraph,
        platform: Platform,
        policy: Optional[SchedulingPolicy] = None,
        engine: Optional[SimulationEngine] = None,
        locations: Optional[DataLocationService] = None,
        initial_data: Optional[Dict[str, float]] = None,
        initial_data_nodes: Optional[Dict[str, str]] = None,
        recovery_enabled: bool = True,
        max_attempts: int = 3,
        dispatch_window: int = 64,
        predictor: Optional["DurationPredictor"] = None,
        extra_stage_in=None,
    ) -> None:
        self.graph = graph
        self.platform = platform
        self.engine = engine if engine is not None else SimulationEngine()
        # Node-local events (completions, failure injections) carry their
        # node's zone so a sharded engine files them on the zone's own
        # timeline; the resolver is bound once so the single-engine path
        # pays one no-op call instead of a per-event flag test.
        if getattr(self.engine, "is_sharded", False):
            self._shard_of = platform.network.zone_of
        else:
            self._shard_of = _no_shard
        self.locations = locations if locations is not None else DataLocationService()
        self.scheduler = TaskScheduler(platform, policy)
        self.recovery_enabled = recovery_enabled
        self.max_attempts = max_attempts
        # Stop scanning the ready queue after this many consecutive failed
        # placements: bounds dispatch cost at O(placed + window) per event
        # instead of O(ready), which is what makes 100-node x 10^4-task
        # simulations (E1) tractable.  Large enough that realistic
        # heterogeneous mixes don't suffer head-of-line blocking.
        self.dispatch_window = dispatch_window
        # Optional intelligent-runtime hook: completed tasks feed an online
        # duration model that prediction-driven policies consult (§VI-C).
        self.predictor = predictor
        # Optional extra stage-in charge: callable(instance, node) -> seconds,
        # e.g. container image pulls (repro.infrastructure.containers).
        self.extra_stage_in = extra_stage_in
        self.resubmissions = 0
        # Streaming campaigns add tasks while the engine runs: with
        # ``hold_open`` set, a momentarily finished graph (all lowered
        # window tasks done, next window not yet closed) does not stop the
        # engine — the run ends when the event queue itself drains (or the
        # caller stops it).
        self.hold_open = False
        # Completion hooks (the dataflow plane's result path): called with
        # the finished TaskInstance after mark_done, before the finished
        # check — so a hook may submit follow-on tasks in the same breath.
        self._done_callbacks: List[Callable[[TaskInstance], None]] = []
        self._completion_events: Dict[int, Event] = {}
        # Certified-blocked bookkeeping lives on each TaskInstance
        # (``blocked_seq``): the grow tick at which its demand provably fit
        # no node.  Each pass re-checks such a task against only the nodes
        # whose capacity grew since (the ledger journals growths), instead
        # of re-probing the whole ledger.
        # grow_seq observed at the start of the previous dispatch pass:
        # everything certified by that pass carries it, which lets the next
        # pass precompute their shared grown-since set once.
        self._last_dispatch_seq = 0
        # Blocked-prefix cursor: the head of the ready queue is typically a
        # stable run of certified-blocked tasks that every pass re-walks.
        # Snapshot the run as (cores, memory_mb, gpus, task_id) tuples so
        # the next pass can refute members against the component maxima of
        # just the nodes grown since the snapshot's tick — three integer
        # compares each instead of a ready-queue yield plus per-task
        # machinery — and resume the real scan at the first member the
        # grown capacity might actually satisfy.  Valid only while
        # graph.ready_epoch is unchanged: insertions are tail-only, so an
        # unchanged epoch (no removals) pins the prefix in place.
        self._prefix_demands: List[tuple] = []
        self._prefix_seq = 0
        self._prefix_epoch = -1
        self._busy_seconds: Dict[str, float] = {}
        self._dispatch_scheduled = False
        # Latest terminal (done/failed) task time so far: engine time is
        # monotonic, so this IS the makespan — run() never rescans the graph.
        self._makespan = 0.0
        # Stage-in route memo, shared with the policy's planner when the
        # policy estimated placements over the same locations and network
        # (earliest-finish-time): the chosen node's transfer times were
        # already computed during selection.
        policy_planner = getattr(self.scheduler.policy, "planner", None)
        if (
            policy_planner is not None
            and policy_planner.locations is self.locations
            and policy_planner.network is platform.network
        ):
            self._planner = policy_planner
        else:
            self._planner = TransferPlanner(self.locations, platform.network)
        # Initial data (input files): place on the declared node, or spread
        # round-robin across alive nodes when unspecified.
        if initial_data:
            nodes = [n.name for n in platform.alive_nodes]
            placements = initial_data_nodes or {}
            for index, (name, size) in enumerate(initial_data.items()):
                node = placements.get(name, nodes[index % len(nodes)])
                self.locations.publish(name, node, size_bytes=size)
        # New nodes (elasticity) should trigger a dispatch attempt.
        platform.on_node_join(lambda node: self._request_dispatch())

    # ------------------------------------------------------------------ run

    def run(self, until: Optional[float] = None) -> SimulationReport:
        """Execute the whole graph; returns the report at completion."""
        self.prime()
        self.engine.run(until=until)
        return self.report()

    def prime(self) -> None:
        """Schedule the first dispatch pass without driving the engine.

        For caller-driven engines (the lane shards of
        :class:`~repro.simulation.parallel.ParallelShardedSimulationEngine`,
        which drain windows under a coordinator instead of owning a run
        loop): ``prime()`` during program setup, then :meth:`report` once
        the coordinator declares the run over.
        """
        self._request_dispatch()

    def report(self) -> SimulationReport:
        """Build the completion report (the engine must have run first)."""
        if not self.graph.finished:
            stuck = [
                t.label
                for t in self.graph.tasks
                if t.state in (TaskState.PENDING, TaskState.READY)
            ]
            raise SimulatedExecutionError(
                f"simulation drained with {len(stuck)} unrunnable tasks "
                f"(first few: {stuck[:5]}); check constraints vs platform"
            )
        makespan = self._makespan
        return SimulationReport(
            makespan=makespan,
            tasks_done=self.graph.completed_count,
            tasks_failed=self.graph.failed_count,
            tasks_cancelled=self.graph.cancelled_count,
            bytes_transferred=self.platform.network.total_bytes_moved,
            remote_transfers=self.platform.network.remote_transfer_count,
            energy_joules=self.platform.energy.total_energy_joules(makespan),
            resubmissions=self.resubmissions,
            per_node_busy_seconds=dict(self._busy_seconds),
        )

    # ---------------------------------------------------- dynamic submission

    def on_task_done(self, callback: Callable[[TaskInstance], None]) -> None:
        """Register a completion hook (called after every mark_done)."""
        self._done_callbacks.append(callback)

    def submit_tasks(
        self, batch: Iterable[Tuple[TaskInstance, Iterable[int]]]
    ) -> int:
        """Add tasks mid-run through the batched path: one dispatch kick.

        The simulated analogue of the runtime's ``submit_many``: however
        many tasks one virtual instant lowers (every window closing at this
        tick), the graph grows in one append pass and the scheduler is
        kicked once — ``_request_dispatch`` already coalesces per
        timestamp, so the per-batch scheduling overhead is a single event.
        """
        count = self.graph.add_tasks(batch)
        if count:
            self._request_dispatch()
        return count

    # ------------------------------------------------------------- dispatch

    def _request_dispatch(self) -> None:
        # Coalesce dispatch requests into one event per timestamp.
        if not self._dispatch_scheduled:
            self._dispatch_scheduled = True
            self.engine.after(0.0, self._dispatch, priority=10, label="dispatch")

    def _dispatch(self) -> None:
        self._dispatch_scheduled = False
        graph = self.graph
        scheduler = self.scheduler
        ledger = scheduler.ledger
        locations = self.locations
        window = self.dispatch_window
        # Demands that failed for lack of capacity this pass.  Capacity only
        # shrinks while a pass allocates (completions are separate events),
        # so a demand needing at least as much as one that already failed
        # cannot become placeable before the pass ends — skipping it is
        # exact, and collapses the re-walk of a blocked prefix to one
        # frontier comparison per task instead of a ledger probe.
        blocked = BlockedDemandFrontier()
        blocked_covers = blocked.covers
        blocked_add = blocked.add
        # Cross-pass certifications: a task that provably fit nowhere at
        # grow tick S stays blocked unless a node that grew *after* S fits
        # it now — every untouched node has only shrunk since the proof.
        # No growth happens mid-pass, so within this pass a certification
        # at cur_seq is final.  (The tick lives on the instance itself:
        # a slot read beats a dict probe at this call frequency.)
        grown_entries = ledger.grow_log.values()
        cur_seq = ledger.grow_seq
        try_place = scheduler.try_place
        free_cores = ledger.total_free_cores
        if free_cores <= 0:
            # Nothing can be placed and no certification would change:
            # leave every cross-pass structure exactly as it was.
            return
        # Lost data can only be *recovered* mid-pass (stage-in publishes
        # copies; nothing evicts), so the check hoists out of the loop —
        # failure-free runs never pay the per-task input scan.
        check_lost = locations.has_lost_data
        # Blocked-prefix cursor: if the certified head run survived intact
        # (no ready-queue removals since it was snapshot), the whole pass
        # walks the snapshot tuples instead of the ready queue.  A member
        # whose demand exceeds, on any axis, the component maxima of the
        # nodes grown since the snapshot's tick is refuted by three integer
        # compares — no instance fetch, no queue yield.  Only plausible
        # members get the full treatment (probe the grown nodes, then
        # try_place); after a placement the maxima are refreshed from the
        # grown nodes' now-current state so later members are judged
        # against what actually remains.  The walk is order-identical to
        # the real scan, so placements and the consecutive-failure window
        # behave exactly as if the queue had been walked.
        start_after = None
        consecutive_failures = 0
        demands = self._prefix_demands
        run_list: List[tuple] = []
        run_append = run_list.append
        run_live = True
        skip_scan = False
        if (
            demands
            and not check_lost
            and graph.ready_epoch == self._prefix_epoch
        ):
            pseq = self._prefix_seq
            grown_list: List[tuple] = []
            for entry in reversed(grown_entries):
                if entry[0] <= pseq:
                    break
                grown_list.append(entry)
            pmc = pmm = pmg = -1
            for _, g_state in grown_list:
                if g_state.free_cores > pmc:
                    pmc = g_state.free_cores
                if g_state.free_memory_mb > pmm:
                    pmm = g_state.free_memory_mb
                if g_state.free_gpus > pmg:
                    pmg = g_state.free_gpus
            get_task = graph.task
            for d in demands:
                if d[0] > pmc or d[1] > pmm or d[2] > pmg:
                    # Refuted against everything grown since the tick: the
                    # member stays certified, now effectively at cur_seq.
                    if run_live:
                        run_append(d)
                    start_after = d[3]
                    consecutive_failures += 1
                    if consecutive_failures >= window:
                        skip_scan = True
                        break
                    continue
                instance = get_task(d[3])
                req = instance.requirements
                refit = False
                for _, g_state in grown_list:
                    if g_state.fits_now(req):
                        refit = True
                        break
                if not refit:
                    if run_live:
                        run_append(d)
                    start_after = d[3]
                    consecutive_failures += 1
                    if consecutive_failures >= window:
                        skip_scan = True
                        break
                    continue
                nodes = try_place(instance)
                if nodes is None:
                    if scheduler.last_failure_was_capacity:
                        blocked_add(req)
                        if run_live:
                            run_append(d)
                    else:
                        # Declined but not certified: it stays queued, so
                        # the snapshot cannot extend past it.
                        run_live = False
                    start_after = d[3]
                    consecutive_failures += 1
                    if consecutive_failures >= window:
                        skip_scan = True
                        break
                    continue
                consecutive_failures = 0
                instance.blocked_seq = None
                self._start_task(instance, nodes)
                free_cores = ledger.total_free_cores
                if free_cores <= 0:
                    skip_scan = True
                    break
                pmc = pmm = pmg = -1
                for _, g_state in grown_list:
                    if g_state.free_cores > pmc:
                        pmc = g_state.free_cores
                    if g_state.free_memory_mb > pmm:
                        pmm = g_state.free_memory_mb
                    if g_state.free_gpus > pmg:
                        pmg = g_state.free_gpus
            if skip_scan:
                # The walk ended inside the snapshot (window exhausted or
                # no capacity left): the queue behind it was never going
                # to be reached, so the pass is over.
                self._prefix_demands = run_list
                if run_list:
                    self._prefix_seq = cur_seq
                self._prefix_epoch = graph.ready_epoch
                return
        # The snapshot for the next pass grows from the scan's certified
        # run: placed, failed and cancelled tasks leave the queue, so the
        # certified survivors stay contiguous from the scan's start; only
        # a non-capacity decline (policy chose to wait) stays queued
        # without a certification and caps the run.
        # Tasks the previous pass re-certified all carry seq >= last_seq, so
        # they share one grown-since set: the nodes that grew after last_seq
        # (typically the one node a completion just freed).  Component-wise
        # maxima over that set give an O(1) sound reject — a demand above
        # the maxima cannot fit any grown node (maxima are taken at pass
        # start and nodes only shrink mid-pass, so the reject never lies;
        # a pass may only probe more than strictly needed).
        last_seq = self._last_dispatch_seq
        self._last_dispatch_seq = cur_seq
        recent: List = []
        for entry in reversed(grown_entries):
            if entry[0] <= last_seq:
                break
            recent.append(entry)
        g_max_cores = -1
        g_max_mem = -1
        g_max_gpus = -1
        for _, g_state in recent:
            if g_state.free_cores > g_max_cores:
                g_max_cores = g_state.free_cores
            if g_state.free_memory_mb > g_max_mem:
                g_max_mem = g_state.free_memory_mb
            if g_state.free_gpus > g_max_gpus:
                g_max_gpus = g_state.free_gpus
        # Tasks certified before last pass (their window slot rotated out)
        # share few distinct ticks; memoize, per tick, the component maxima
        # over the nodes grown since it.  First task with a stale tick pays
        # one plain attribute walk; the rest reject in O(1).  Maxima are
        # read at memo time and nodes only shrink mid-pass, so a reject
        # never lies (a probe may just be more generous than needed).
        cold_maxima: Dict[int, tuple] = {}
        cold_maxima_get = cold_maxima.get
        for instance in graph.iter_ready(start_after):
            if free_cores <= 0:
                break
            if check_lost:
                lost = [d for d in instance.reads if locations.is_lost(d)]
                if lost:
                    graph.mark_failed(
                        instance.task_id,
                        RuntimeError(f"inputs {lost[:3]} lost and not persisted"),
                        now=self.engine.now,
                    )
                    self._makespan = self.engine.now
                    if graph.finished and not self.hold_open:
                        self.engine.stop()
                    continue
            req = instance.requirements
            seq = instance.blocked_seq
            if seq is not None:
                if seq >= last_seq:
                    # Hot path: certified by the previous pass, so only the
                    # precomputed ``recent`` growths matter.  Demands above
                    # the component maxima are rejected without a probe.
                    if (
                        req.cores > g_max_cores
                        or req.memory_mb > g_max_mem
                        or req.gpus > g_max_gpus
                    ):
                        refit = False
                    else:
                        refit = False
                        for entry in recent:
                            if entry[0] <= seq:
                                break
                            if entry[1].fits_now(req):
                                refit = True
                                break
                else:
                    # Cold path: stale certification.  Bound the grown-since
                    # walk with the memoized suffix maxima before paying
                    # per-node probes.
                    m = cold_maxima_get(seq)
                    if m is None:
                        mc = mm = mg = -1
                        for grown_seq, g_state in reversed(grown_entries):
                            if grown_seq <= seq:
                                break
                            if g_state.free_cores > mc:
                                mc = g_state.free_cores
                            if g_state.free_memory_mb > mm:
                                mm = g_state.free_memory_mb
                            if g_state.free_gpus > mg:
                                mg = g_state.free_gpus
                        cold_maxima[seq] = m = (mc, mm, mg)
                    if req.cores > m[0] or req.memory_mb > m[1] or req.gpus > m[2]:
                        refit = False
                    else:
                        refit = False
                        for grown_seq, grown_state in reversed(grown_entries):
                            if grown_seq <= seq:
                                break
                            if grown_state.fits_now(req):
                                refit = True
                                break
                if not refit:
                    instance.blocked_seq = cur_seq
                    if run_live:
                        run_append((req.cores, req.memory_mb, req.gpus, instance.task_id))
                    consecutive_failures += 1
                    if consecutive_failures >= window:
                        break
                    continue
            elif blocked_covers(req):
                # The dominating demand failed at this pass's capacity or
                # more, so this one is certified at cur_seq as well.
                instance.blocked_seq = cur_seq
                if run_live:
                    run_append((req.cores, req.memory_mb, req.gpus, instance.task_id))
                consecutive_failures += 1
                if consecutive_failures >= window:
                    break
                continue
            nodes = try_place(instance)
            if nodes is None:
                if scheduler.last_failure_was_capacity:
                    blocked_add(req)
                    instance.blocked_seq = cur_seq
                    if run_live:
                        run_append((req.cores, req.memory_mb, req.gpus, instance.task_id))
                else:
                    # Declined but not certified (policy may accept later):
                    # it stays queued, so the certified run cannot extend
                    # past it.
                    run_live = False
                consecutive_failures += 1
                if consecutive_failures >= window:
                    break
                continue
            consecutive_failures = 0
            if seq is not None:
                instance.blocked_seq = None
            self._start_task(instance, nodes)
            free_cores = ledger.total_free_cores
            # The placement may have consumed the very capacity the maxima
            # summarize; refresh them from the (still-current) recent states
            # so later blocked tasks are rejected by the O(1) bound again
            # rather than falling through to per-node probes.
            if recent:
                g_max_cores = -1
                g_max_mem = -1
                g_max_gpus = -1
                for _, g_state in recent:
                    if g_state.free_cores > g_max_cores:
                        g_max_cores = g_state.free_cores
                    if g_state.free_memory_mb > g_max_mem:
                        g_max_mem = g_state.free_memory_mb
                    if g_state.free_gpus > g_max_gpus:
                        g_max_gpus = g_state.free_gpus
        # Record the certified head run for the next pass.  The epoch is
        # read *after* this pass's own removals (placements, lost-input
        # failures), all of which happened beyond the run, so an unchanged
        # counter next pass means the run itself is untouched.
        self._prefix_demands = run_list
        if run_list:
            self._prefix_seq = cur_seq
        self._prefix_epoch = graph.ready_epoch

    def _start_task(self, instance: TaskInstance, nodes: List[str]) -> None:
        head = nodes[0]
        now = self.engine.now
        self.graph.mark_running(instance.task_id, head, now=now)
        instance.assigned_nodes = nodes
        stage_in = self._stage_in_time(instance, head)
        if self.extra_stage_in is not None:
            stage_in += self.extra_stage_in(instance, head)
        node = self.platform.node(head)
        compute = (instance.profile.duration_s if instance.profile else 0.0) / node.speed_factor
        total = stage_in + compute
        event = self.engine.after(
            total,
            lambda tid=instance.task_id: self._complete_task(tid),
            label=f"finish-{instance.label}",
            shard=self._shard_of(head),
        )
        self._completion_events[instance.task_id] = event

    def _stage_in_time(self, instance: TaskInstance, node_name: str) -> float:
        """Coalesced parallel-fetch model.

        Fetches still come from each datum's memoized cheapest source
        (under earliest-finish-time placement the exact (datum, node) pair
        was just computed while estimating the winning candidate), but
        same-link transfers for this task are batched into one latency
        charge plus a summed bandwidth term, with distinct links fetching
        in parallel — so the stage-in time is the max over links of the
        coalesced transfer time.  Byte totals and source choices match the
        per-holder pricing exactly.
        """
        if not instance.reads:
            return 0.0
        worst, moves = self._planner.stage_in_plan(instance.reads, node_name)
        if not moves:
            return 0.0
        now = self.engine.now
        locations = self.locations
        network = self.platform.network
        for datum_id, src, size, duration in moves:
            network.record_transfer(
                src, node_name, size, start_time=now, duration=duration, datum=datum_id
            )
            # The fetched copy now also lives on the destination node.
            locations.publish(datum_id, node_name, size_bytes=size)
        return worst

    def _complete_task(self, task_id: int) -> None:
        instance = self.graph.task(task_id)
        if instance.state is not TaskState.RUNNING:
            return  # stale completion after a failure-triggered requeue
        now = self.engine.now
        self._completion_events.pop(task_id, None)
        # Energy + utilization accounting over the full occupancy window.
        start = instance.start_time if instance.start_time is not None else now
        for node_name in instance.assigned_nodes:
            self.platform.energy.record_busy(
                node_name, start, now, instance.requirements.cores
            )
            self._busy_seconds[node_name] = self._busy_seconds.get(node_name, 0.0) + (
                now - start
            ) * 1.0
        # Outputs are born on the head node.
        head = instance.assigned_nodes[0]
        if instance.profile is not None:
            for datum_id, size in instance.profile.output_sizes.items():
                self.locations.publish(datum_id, head, size_bytes=size)
        if self.predictor is not None and instance.profile is not None:
            self.predictor.observe(
                instance.label,
                instance.profile.duration_s,
                size=sum(instance.profile.input_sizes.values()) or None,
            )
        self.scheduler.release(instance)
        self.graph.mark_done(task_id, now=now)
        self._makespan = now
        # Completion hooks run before the finished check: a hook may lower
        # follow-on tasks (the dataflow plane's batch stages), un-finishing
        # the graph in the same event.
        for callback in self._done_callbacks:
            callback(instance)
        if self.graph.finished:
            # Stop the engine even if periodic controllers (elasticity
            # policies) still have ticks queued: the workflow is done —
            # unless a streaming campaign holds the run open for windows
            # that have not closed yet.
            if not self.hold_open:
                self.engine.stop()
        else:
            self._request_dispatch()

    # -------------------------------------------------------------- failures

    def fail_node_at(self, time: float, node_name: str) -> None:
        """Inject a node failure at virtual ``time`` (call before run())."""
        self.engine.at(
            time,
            lambda: self._fail_node(node_name),
            priority=-10,  # failures preempt completions at the same instant
            label=f"fail-{node_name}",
            shard=self._shard_of(node_name),
        )

    def _fail_node(self, node_name: str) -> None:
        if not self.platform.has_node(node_name):
            return
        now = self.engine.now
        # Collect tasks running on the failed node before mutating anything:
        # the capacity ledger already knows exactly which tasks hold an
        # allocation there, so there is no need to scan the whole graph.
        ledger = self.scheduler.ledger
        if ledger.has_node(node_name):
            victim_ids = sorted(ledger.state(node_name).running_task_ids)
        else:
            victim_ids = []
        victims = [
            t
            for t in (self.graph.task(tid) for tid in victim_ids)
            if t.state is TaskState.RUNNING
        ]
        self.platform.fail_node(node_name, at=now)
        self.locations.evict_node(node_name)
        for instance in victims:
            event = self._completion_events.pop(instance.task_id, None)
            if event is not None:
                event.cancel()
            # The (now gone) ledger entry was removed with the node; release
            # co-allocated capacity on surviving gang nodes.
            self.scheduler.release(instance)
            if self.recovery_enabled and self._inputs_recoverable(instance):
                if instance.attempts < self.max_attempts:
                    self.graph.requeue(instance.task_id)
                    self.resubmissions += 1
                else:
                    self.graph.mark_failed(
                        instance.task_id,
                        RuntimeError(
                            f"node {node_name} failed and task exceeded "
                            f"{self.max_attempts} attempts"
                        ),
                        now=now,
                    )
                    self._makespan = now
            else:
                self.graph.mark_failed(
                    instance.task_id,
                    RuntimeError(
                        f"node {node_name} failed"
                        + ("" if self.recovery_enabled else " (recovery disabled)")
                    ),
                    now=now,
                )
                self._makespan = now
        # Ready tasks whose inputs were lost with the node can never
        # execute: fail them now so the run ends with an explicit verdict
        # instead of a drained-but-unfinished simulation.  (Pending readers
        # of lost data are cancelled when their ancestor fails, or fail
        # here once they become ready.)  The ready queue is snapshotted
        # because mark_failed unlinks entries; pending tasks — the bulk of
        # a large graph — are never touched.
        if self.locations.has_lost_data:
            for instance in list(self.graph.iter_ready()):
                if any(self.locations.is_lost(d) for d in instance.reads):
                    self.graph.mark_failed(
                        instance.task_id,
                        RuntimeError(
                            f"inputs lost with node {node_name} and no "
                            "persistent copy exists"
                        ),
                        now=now,
                    )
                    self._makespan = now
        if self.graph.finished:
            if not self.hold_open:
                self.engine.stop()
        else:
            self._request_dispatch()

    def _inputs_recoverable(self, instance: TaskInstance) -> bool:
        """Every input still has a copy on an alive node (or in a store)."""
        for datum_id in instance.reads:
            if self.locations.is_lost(datum_id):
                return False
            holders = self.locations.get_locations(datum_id)
            alive = {
                h
                for h in holders
                if self._holder_alive(h)
            }
            if holders and not alive:
                return False
        return True

    def _holder_alive(self, holder: str) -> bool:
        """A holder is alive if it is an alive platform node, or an external
        store location (e.g. a persistent backend) not modeled as a node."""
        if self.platform.has_node(holder):
            return self.platform.node(holder).alive
        return True
