"""Elasticity across the continuum: clouds, federations, SLURM (claim C6).

Run:  python examples/continuum_elasticity.py

Drives the same bursty workload through three resource-management regimes —
a fixed cluster, an elastic cloud federation (cheap-but-slow-boot +
expensive-but-fast-boot providers), and a SLURM allocation that grows
mid-job — printing the makespan/cost trade-off of each.
"""

from repro.executor import SimulatedExecutor
from repro.infrastructure import (
    CloudFederation,
    CloudProvider,
    ElasticityPolicy,
    SlurmManager,
    make_hpc_cluster,
)
from repro.infrastructure.cloud import VmTemplate
from repro.simulation import SimulationEngine
from repro.workloads import embarrassingly_parallel

BURST = 240
TASK_S = 30.0


def run_fixed():
    builder = embarrassingly_parallel(BURST, duration=TASK_S)
    platform = make_hpc_cluster(1, cores_per_node=8)
    report = SimulatedExecutor(builder.graph, platform).run()
    return report.makespan, 0.0


def run_federated_elastic():
    builder = embarrassingly_parallel(BURST, duration=TASK_S)
    platform = make_hpc_cluster(1, cores_per_node=8)
    engine = SimulationEngine()
    executor = SimulatedExecutor(builder.graph, platform, engine=engine)
    cheap = CloudProvider(
        platform, engine, name="cheap", startup_delay_s=90.0,
        cost_per_node_second=0.00005, template=VmTemplate(cores=16), max_nodes=4,
    )
    fast = CloudProvider(
        platform, engine, name="fast", startup_delay_s=20.0,
        cost_per_node_second=0.0005, template=VmTemplate(cores=16), max_nodes=8,
    )
    federation = CloudFederation([cheap, fast], placement=CloudFederation.CHEAPEST_FIRST)
    policy = ElasticityPolicy(
        federation,
        engine,
        backlog_fn=lambda: executor.graph.ready_count,
        idle_nodes_fn=lambda: [
            name for name in federation.active_nodes
            if executor.scheduler.ledger.has_node(name)
            and executor.scheduler.ledger.state(name).idle
        ],
        period_s=15.0,
        scale_out_backlog=1.0,
    )
    policy.start()
    report = executor.run()
    policy.stop()
    federation.shutdown()
    return report.makespan, federation.total_cost


def run_slurm_growing():
    platform = make_hpc_cluster(8, cores_per_node=8)
    engine = SimulationEngine()
    slurm = SlurmManager(platform, engine)
    result = {}

    def on_start(job):
        # Run the burst inside the allocation; ask for more nodes when the
        # backlog is obvious (a COMPSs runtime would do this automatically).
        builder = embarrassingly_parallel(BURST, duration=TASK_S)
        allocation = Platform_from_allocation(platform, job.allocated, engine)
        executor = SimulatedExecutor(builder.graph, allocation, engine=engine)
        result["executor"] = executor
        executor._request_dispatch()
        slurm.request_grow(job.job_id, 4)

    def on_grow(job, new_nodes):
        for name in new_nodes:
            node = platform.node(name)
            result["executor"].platform.add_node(
                _clone_node(node), at=engine.now
            )

    slurm.submit(2, on_start=on_start, on_grow=on_grow)
    engine.run()
    report_graph = result["executor"].graph
    makespan = max(t.end_time for t in report_graph.tasks if t.end_time is not None)
    return makespan, 0.0


def Platform_from_allocation(platform, node_names, engine):
    """A sub-platform exposing only the job's allocated nodes."""
    from repro.infrastructure import Platform

    allocation = Platform(name="allocation", network=platform.network)
    for name in node_names:
        allocation.add_node(_clone_node(platform.node(name)), at=engine.now)
    return allocation


def _clone_node(node):
    from dataclasses import replace

    return replace(node, name=f"alloc-{node.name}")


def main():
    print(f"Bursty workload: {BURST} x {TASK_S:.0f}s tasks\n")
    rows = [
        ("fixed 1x8 cores", *run_fixed()),
        ("elastic federation", *run_federated_elastic()),
        ("SLURM job, 2->6 nodes", *run_slurm_growing()),
    ]
    print(f"{'regime':<24} {'makespan':>12} {'cloud cost':>12}")
    for name, makespan, cost in rows:
        print(f"{name:<24} {makespan / 60:>10.1f}min {cost:>12.4f}")
    print("\nElasticity tracks the burst; SLURM growth widens a running job.")


if __name__ == "__main__":
    main()
