"""Persistent storage integration (paper §VI-A1, claim C4).

Run:  python examples/persistent_storage.py

Shows the three layers of the storage stack:

1. the SOI: ``StorageObject.make_persistent`` + SRI ``getLocations``;
2. Hecuba-style ``StorageDict``: a Python dict partitioned over a replicated
   key-value cluster, with ``split()`` yielding data-local partitions;
3. dataClay-style active objects: methods executed *inside* the store move
   orders of magnitude fewer bytes than fetch-then-compute;
4. locality-aware scheduling driven by ``getLocations`` on a simulated
   cluster: the scheduler sends tasks to their partition's node.
"""

import numpy as np

from repro.executor import SimulatedExecutor, SimWorkflowBuilder
from repro.infrastructure import make_hpc_cluster
from repro.scheduling import DataLocationService, FifoPolicy, LocalityPolicy
from repro.storage import (
    ActiveObject,
    ActiveObjectStore,
    KeyValueCluster,
    StorageDict,
    StorageObject,
    StorageRuntime,
    set_storage_runtime,
)

STORAGE_NODES = ["mn-node-0", "mn-node-1", "mn-node-2", "mn-node-3"]


class ExperimentRecord(StorageObject):
    """A plain SOI object: persisted with make_persistent."""

    def __init__(self, name, parameters):
        super().__init__()
        self.name = name
        self.parameters = parameters


class TimeSeries(ActiveObject):
    """A dataClay-style active object: heavy payload, light methods."""

    def __init__(self, samples):
        super().__init__()
        self.samples = np.asarray(samples)

    def mean(self):
        return float(self.samples.mean())

    def above(self, threshold):
        return int((self.samples > threshold).sum())


def soi_demo(sri):
    print("== 1. Storage Object Interface (make_persistent / getLocations)")
    record = ExperimentRecord("run-42", {"resolution": "12km", "days": 4})
    object_id = record.make_persistent(alias="experiments/run-42")
    locations = sri.get_locations(object_id)
    print(f"   persisted id   : {object_id}")
    print(f"   replica holders: {sorted(locations)}")
    clone = ExperimentRecord.from_storage(object_id)
    print(f"   rebuilt copy   : {clone.name} {clone.parameters}")
    print()


def storage_dict_demo(cluster):
    print("== 2. Hecuba StorageDict: dict -> partitioned table")
    genotypes = StorageDict(cluster, table="genotypes")
    for chunk in range(16):
        genotypes[f"chunk-{chunk}"] = list(range(chunk, chunk + 4))
    partitions = genotypes.split()
    print(f"   {len(genotypes)} cells over {len(partitions)} data-local partitions:")
    for node, keys in sorted(partitions.items()):
        print(f"     {node}: {len(keys)} keys")
    print()


def active_object_demo():
    print("== 3. dataClay active objects: execute-in-store vs fetch")
    store = ActiveObjectStore(STORAGE_NODES, name="dataclay")
    series = TimeSeries(np.random.default_rng(0).normal(size=200_000))
    series.make_persistent(store)
    mean = series.remote("mean")
    spikes = series.remote("above", 3.0)
    in_store_bytes = store.bytes_moved_calls
    store.fetch(series.getID())  # what a non-active store would do
    fetch_bytes = store.bytes_moved_fetch
    print(f"   mean={mean:.4f}, samples>3sigma={spikes}")
    print(f"   bytes moved, in-store execution : {in_store_bytes:,}")
    print(f"   bytes moved, fetch-then-compute : {fetch_bytes:,}")
    print(f"   reduction                       : {fetch_bytes / max(1, in_store_bytes):,.0f}x")
    print()


def locality_scheduling_demo():
    print("== 4. Locality scheduling from getLocations (simulated cluster)")

    def build():
        builder = SimWorkflowBuilder()
        for partition in range(16):
            builder.add_initial_datum(f"part/{partition}", 2e9)
            builder.add_task(
                f"analyze/{partition}",
                duration=30.0,
                inputs=[f"part/{partition}"],
                outputs={f"result/{partition}": 1e6},
            )
        return builder

    placements = {f"part/{p}": f"mn-node-{p % 4:04d}" for p in range(16)}
    results = {}
    for label, policy_factory in (
        ("fifo (locality-blind)", lambda loc: FifoPolicy()),
        ("locality-aware", LocalityPolicy),
    ):
        builder = build()
        platform = make_hpc_cluster(4, name="mn")
        locations = DataLocationService()
        report = SimulatedExecutor(
            builder.graph,
            platform,
            policy=policy_factory(locations),
            locations=locations,
            initial_data=builder.initial_data,
            initial_data_nodes={
                k: f"mn-node-{int(v.split('-')[-1]):04d}" for k, v in placements.items()
            },
        ).run()
        results[label] = report
        print(
            f"   {label:22s}: makespan={report.makespan:6.1f}s "
            f"moved={report.bytes_transferred / 1e9:5.1f}GB "
            f"remote transfers={report.remote_transfers}"
        )
    print("   -> scheduling tasks where their partition lives removes the transfers")


def main():
    cluster = KeyValueCluster(STORAGE_NODES, replication=2, name="hecuba")
    sri = StorageRuntime()
    sri.register_backend(cluster, default=True)
    set_storage_runtime(sri)
    try:
        soi_demo(sri)
        storage_dict_demo(cluster)
        active_object_demo()
        locality_scheduling_demo()
    finally:
        set_storage_runtime(None)


if __name__ == "__main__":
    main()
