"""GUIDANCE-style GWAS workflow (paper §VI-A, claims C1/C2).

Run:  python examples/gwas_guidance.py

Part 1 executes a miniature genome-wide association pipeline *for real* on
the thread-pool runtime: QC -> phasing -> imputation -> association per
chunk, then per-chromosome merges, with imputation memory constraints
evaluated dynamically per invocation (the COMPSs feature the paper credits
with halving GUIDANCE's execution time).

Part 2 reruns the full-scale synthetic workload on a simulated MareNostrum
cluster and prints the static-vs-dynamic memory-management comparison.
"""

import random
import time

from repro import Runtime, compss_wait_on, constraint, task
from repro.executor import SimulatedExecutor
from repro.infrastructure import make_hpc_cluster
from repro.workloads import GuidanceConfig, build_guidance_workflow


# --------------------------------------------------------------- real tasks


@task(returns=1)
def quality_control(chunk):
    """Filter out low-quality variants."""
    return [v for v in chunk if v["quality"] > 0.3]


@task(returns=1)
def phase(chunk):
    """Haplotype phasing (simulated by tagging)."""
    return [{**v, "phased": True} for v in chunk]


@constraint(memory_mb=lambda chunk, chunk_size: 64 + chunk_size // 4)
@task(returns=1)
def impute(chunk, chunk_size):
    """Genotype imputation — memory demand depends on the chunk's size.

    The constraint is a callable evaluated per invocation; it must depend on
    concrete arguments (``chunk_size``), since ``chunk`` is a future here.
    """
    imputed = list(chunk)
    for variant in chunk:
        if variant["quality"] < 0.6:
            imputed.append({**variant, "imputed": True})
    return imputed


@task(returns=1)
def association(chunk, phenotype_seed):
    """Association statistics per variant chunk."""
    rng = random.Random(phenotype_seed)
    return [(v["id"], rng.random()) for v in chunk]


@task(returns=1)
def merge(results):
    """Merge the chunk-level hits of one chromosome."""
    merged = [hit for chunk in results for hit in chunk]
    return sorted(merged, key=lambda pair: pair[1])[:10]


def make_chunk(chromosome, index, size=400):
    rng = random.Random(chromosome * 1000 + index)
    return [
        {"id": f"chr{chromosome}:{index}:{v}", "quality": rng.random()}
        for v in range(size)
    ]


def run_real_pipeline(chromosomes=4, chunks=6):
    print(f"== Part 1: real execution ({chromosomes} chromosomes x {chunks} chunks)")
    started = time.perf_counter()
    with Runtime(workers=8) as runtime:
        top_hits = {}
        for chromosome in range(chromosomes):
            results = []
            for index in range(chunks):
                chunk = make_chunk(chromosome, index)
                filtered = quality_control(chunk)
                phased = phase(filtered)
                imputed = impute(phased, chunk_size=len(chunk))
                results.append(association(imputed, phenotype_seed=index))
            top_hits[chromosome] = merge(results)
        resolved = {c: compss_wait_on(f) for c, f in top_hits.items()}
        stats = runtime.statistics()
    print(f"   tasks executed: {stats['tasks_done']}")
    print(f"   wall time     : {time.perf_counter() - started:.2f}s")
    for chromosome, hits in resolved.items():
        best_id, best_p = hits[0]
        print(f"   chr{chromosome}: top hit {best_id} (p={best_p:.4f})")
    print()


def run_simulated_comparison():
    print("== Part 2: simulated MareNostrum — static vs dynamic memory constraints")
    nodes = 8
    results = {}
    for mode in ("static", "dynamic"):
        workload = build_guidance_workflow(
            GuidanceConfig(chromosomes=8, chunks_per_chromosome=16, memory_mode=mode)
        )
        platform = make_hpc_cluster(nodes)
        report = SimulatedExecutor(
            workload.graph, platform, initial_data=workload.initial_data
        ).run()
        results[mode] = report
        print(
            f"   {mode:8s}: makespan={report.makespan / 3600:.2f}h "
            f"tasks={report.tasks_done}"
        )
    reduction = 1 - results["dynamic"].makespan / results["static"].makespan
    print(f"   dynamic constraints reduce execution time by {reduction:.0%}")
    print("   (paper reports ~50% for GUIDANCE on MareNostrum)")


if __name__ == "__main__":
    run_real_pipeline()
    run_simulated_comparison()
