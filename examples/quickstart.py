"""Quickstart: the PyCOMPSs-style programming model in 60 lines.

Run:  python examples/quickstart.py

Decorate plain functions with @task, call them as usual, and the runtime
turns the calls into an asynchronous task graph executed on a thread pool.
Synchronization happens only where you ask for it (compss_wait_on).
"""

import time

from repro import INOUT, Runtime, compss_wait_on, constraint, task


@task(returns=1)
def load_chunk(index):
    """Pretend to read a chunk of input data."""
    time.sleep(0.01)
    return list(range(index * 100, (index + 1) * 100))


@constraint(cores=1, memory_mb=256)
@task(returns=1)
def process(chunk):
    """Per-chunk computation: runs in parallel with every other chunk."""
    return sum(value * value for value in chunk)


@task(returns=1)
def combine(partials):
    """Futures inside the list are tracked and substituted automatically."""
    return sum(partials)


@task(log=INOUT)
def record(log, message):
    """INOUT parameters are mutated in place, with dependencies preserved."""
    log.append(message)


def main():
    started = time.perf_counter()
    with Runtime(workers=4) as runtime:
        # Fan out: nothing below blocks until compss_wait_on.
        chunks = [load_chunk(i) for i in range(16)]
        partials = [process(chunk) for chunk in chunks]
        total = combine(partials)

        log = []
        record(log, "submitted 33 tasks")
        record(log, "waiting for the result")

        result = compss_wait_on(total)
        log = runtime.wait_on(log)  # synchronize the mutated object

        stats = runtime.statistics()

    elapsed = time.perf_counter() - started
    expected = sum(v * v for v in range(1600))
    print(f"sum of squares 0..1599       = {result}")
    print(f"matches sequential result    = {result == expected}")
    print(f"tasks executed               = {stats['tasks_done']}")
    print(f"wall time                    = {elapsed:.2f}s")
    print(f"log (INOUT object)           = {log}")


if __name__ == "__main__":
    main()
