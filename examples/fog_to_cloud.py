"""Fog-to-cloud COMPSs Agents (paper §VI-B, claim C5).

Run:  python examples/fog_to_cloud.py

Deploys one agent per fog/cloud device on the OpenFog-style platform of
Fig. 5, starts an application on a fog agent, and shows:

1. fog-to-cloud offloading kicking in once the fog device saturates;
2. crash recovery: a cloud worker dies mid-run, and because every task value
   was persisted through the dataClay-like store, the orchestrator resubmits
   the lost work instead of failing.
"""

from repro.agents import Agent, LoadThresholdOffload, MessageBus, NeverOffload
from repro.executor import SimWorkflowBuilder
from repro.infrastructure import make_fog_platform
from repro.simulation import SimulationEngine


def sensor_analytics_app(num_windows=48):
    """A stream-analytics style workload: per-window feature extraction
    feeding a per-window anomaly detector."""
    builder = SimWorkflowBuilder()
    for window in range(num_windows):
        builder.add_task(
            f"features/{window}",
            duration=8.0,
            outputs={f"feat/{window}": 2e5},
        )
        builder.add_task(
            f"detect/{window}",
            duration=12.0,
            inputs=[f"feat/{window}"],
            outputs={f"alert/{window}": 1e3},
        )
    return builder


def deploy(persistence):
    platform = make_fog_platform(num_edge=0, num_fog=3, num_cloud=2)
    engine = SimulationEngine()
    bus = MessageBus(platform, engine)
    store = "cloud-1" if persistence else None
    agents = {
        name: Agent(name, name, bus, persistence_store_node=store)
        for name in ("fog-0", "fog-1", "fog-2", "cloud-0", "cloud-1")
    }
    return platform, engine, bus, agents


def scenario_offloading():
    print("== Scenario 1: fog-only vs fog-to-cloud offloading")
    for label, policy, peers in (
        ("fog-only", NeverOffload(), []),
        ("offload", LoadThresholdOffload(threshold=1.0), ["cloud-0", "fog-1", "fog-2"]),
    ):
        platform, engine, bus, agents = deploy(persistence=False)
        orchestrator = agents["fog-0"]
        orchestrator.start_application(
            sensor_analytics_app().graph, policy=policy, peers=peers
        )
        engine.run()
        report = orchestrator.report()
        placement = ", ".join(f"{k}:{v}" for k, v in sorted(report.executed_by.items()))
        print(
            f"   {label:9s}: makespan={report.makespan:7.1f}s  "
            f"executed_by=[{placement}]"
        )
    print()


def scenario_recovery():
    print("== Scenario 2: cloud worker crashes at t=40s, mid-application")
    for label, persistence in (("no persistence", False), ("dataClay persistence", True)):
        platform, engine, bus, agents = deploy(persistence=persistence)
        orchestrator = agents["fog-0"]
        orchestrator.start_application(
            sensor_analytics_app(num_windows=96).graph,
            policy=LoadThresholdOffload(threshold=0.5),
            peers=["cloud-0"],
        )
        bus.kill_agent("cloud-0", at=40.0)
        engine.run()
        report = orchestrator.report()
        if report.completed:
            outcome = (
                f"completed in {report.makespan:.1f}s, "
                f"{report.tasks_recovered} tasks resubmitted"
            )
        else:
            outcome = f"FAILED ({getattr(orchestrator, 'failure_reason', 'unknown')})"
        print(f"   {label:22s}: {outcome}")
    print("\n   -> persist-before-offload turns a fatal crash into bounded re-execution")


if __name__ == "__main__":
    scenario_offloading()
    scenario_recovery()
