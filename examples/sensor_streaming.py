"""Streaming sensors across the continuum (§I/§III).

Run:  python examples/sensor_streaming.py

Three jittery edge sensors stream readings into a fog-hosted windowed
processor; per-window anomaly summaries stream out while the campaign runs,
and a live monitor prints them as they appear — the "results streamed out
for monitoring ... to enable interactivity" the paper motivates.  The same
campaign processed as an offline batch shows what fragmentation costs in
result freshness.
"""

from repro.infrastructure import make_fog_platform
from repro.simulation import SimulationEngine
from repro.streams import (
    BatchCollector,
    DataStream,
    SensorSource,
    WindowedProcessor,
)

CAMPAIGN_S = 120.0
WINDOW_S = 10.0


def anomaly_summary(elements):
    values = [e.value for e in elements]
    mean = sum(values) / len(values)
    spikes = sum(1 for v in values if v > 1.5)
    return {"mean": round(mean, 3), "spikes": spikes, "n": len(values)}


def reading(seq, rng):
    base = 1.0 + 0.1 * (rng.random() - 0.5)
    # Occasional spikes (a misbehaving instrument).
    return base + (1.0 if rng.random() < 0.05 else 0.0)


def main():
    engine = SimulationEngine()
    platform = make_fog_platform(num_edge=3, num_fog=1, num_cloud=1)
    readings = DataStream("readings")
    results = DataStream("results")

    for index in range(3):
        SensorSource(
            engine, readings, name=f"edge-{index}", period_s=1.0,
            jitter=0.2, until=CAMPAIGN_S, seed=index, reading_fn=reading,
        ).start(at=index * 0.1)

    processor = WindowedProcessor(
        engine, platform, readings, results, node_name="fog-0",
        window_s=WINDOW_S, compute_fn=anomaly_summary,
    )
    processor.start()

    # The "scientist's monitor": prints results the moment they stream out.
    print(f"Live monitor (window={WINDOW_S:.0f}s, campaign={CAMPAIGN_S:.0f}s):")
    results.subscribe(
        lambda element: print(
            f"  t={element.timestamp:7.2f}s  window result: {element.value.value}"
        )
    )

    engine.at(CAMPAIGN_S + 1e-6, readings.close)
    engine.run()

    print(f"\nStreaming: {len(processor.results)} window results, "
          f"mean freshness {processor.mean_latency:.2f}s")

    # The fragmented alternative: same campaign, one batch at the end.
    engine2 = SimulationEngine()
    platform2 = make_fog_platform(num_edge=3, num_fog=1, num_cloud=1)
    readings2 = DataStream("readings")
    for index in range(3):
        SensorSource(
            engine2, readings2, name=f"edge-{index}", period_s=1.0,
            jitter=0.2, until=CAMPAIGN_S, seed=index, reading_fn=reading,
        ).start(at=index * 0.1)
    batch = BatchCollector(
        engine2, platform2, readings2, "cloud-0", compute_fn=anomaly_summary
    )
    batch.process_at(CAMPAIGN_S + 1e-6)
    engine2.run()
    print(
        f"Batch    : one result, oldest data {batch.result_latency:.0f}s stale "
        f"({batch.result.value})"
    )


if __name__ == "__main__":
    main()
