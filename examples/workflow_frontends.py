"""The §II front-end taxonomy on one workflow.

Run:  python examples/workflow_frontends.py

Describes the same three-stage analysis experiment three ways — textually
(Pegasus-style), as a cycling suite (Autosubmit/Cylc-style), and
programmatically (the PyCOMPSs-style API) — and shows all three front-ends
produce graphs the same runtime machinery executes, analyzes (workflow
model), and exports (DOT, Paraver-like traces).
"""

from repro.executor import SimulatedExecutor, SimWorkflowBuilder
from repro.frontends import CyclingSuite, SuiteTask, parse_workflow_text
from repro.infrastructure import make_hpc_cluster
from repro.metrics import graph_to_dot
from repro.metrics.model import analyze_graph
from repro.metrics.paraver import export_trace_csv

TEXTUAL = """
# three-stage analysis, textual description
data observations size=5e9
task calibrate duration=120 reads=observations writes=calibrated:5e9
task detect    duration=300 cores=8 reads=calibrated writes=events:1e8
task summarize duration=60  reads=events writes=catalog:1e6
"""


def textual_frontend():
    return parse_workflow_text(TEXTUAL)


def suite_frontend(cycles=3):
    suite = (
        CyclingSuite("survey")
        .add_task(SuiteTask("calibrate", duration=120.0))
        .add_task(SuiteTask("detect", duration=300.0, cores=8, depends=["calibrate"]))
        .add_task(
            SuiteTask("summarize", duration=60.0, depends=["detect", "summarize[-1]"])
        )
    )
    return suite.expand(cycles)


def programmatic_frontend():
    builder = SimWorkflowBuilder()
    builder.add_initial_datum("observations", 5e9)
    builder.add_task(
        "calibrate", duration=120.0, inputs=["observations"],
        outputs={"calibrated": 5e9},
    )
    builder.add_task(
        "detect", duration=300.0, cores=8, inputs=["calibrated"],
        outputs={"events": 1e8},
    )
    builder.add_task("summarize", duration=60.0, inputs=["events"])
    return builder


def run_and_report(name, builder):
    model = analyze_graph(builder.graph)
    report = SimulatedExecutor(
        builder.graph, make_hpc_cluster(2), initial_data=builder.initial_data
    ).run()
    print(
        f"  {name:<14} tasks={model.task_count:<3} "
        f"work={model.total_work_s:>7.0f}s depth={model.critical_path_s:>6.0f}s "
        f"makespan={report.makespan:>6.0f}s"
    )
    return builder.graph


def main():
    print("One experiment, three §II front-ends:\n")
    run_and_report("textual", textual_frontend())
    graph = run_and_report("cycling suite", suite_frontend())
    run_and_report("programmatic", programmatic_frontend())

    print("\nArtifacts from the suite run:")
    dot = graph_to_dot(graph)
    csv_text = export_trace_csv(graph)
    print(f"  DOT graph     : {len(dot.splitlines())} lines (render with graphviz)")
    print(f"  trace CSV     : {len(csv_text.splitlines()) - 1} rows")
    print("\nFirst DOT lines:")
    for line in dot.splitlines()[:6]:
        print(f"    {line}")


if __name__ == "__main__":
    main()
