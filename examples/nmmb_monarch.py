"""NMMB-Monarch weather workflow (paper §VI-A, claim C3).

Run:  python examples/nmmb_monarch.py

Simulates the five-step chemical weather prediction workflow — init scripts,
preprocessing, an MPI gang simulation spanning several nodes, postprocessing
and archiving — for a multi-day forecast on a simulated cluster, comparing
the original driver (sequential init scripts) against the PyCOMPSs port
(init scripts parallelized by the task runtime).
"""

from repro.executor import SimulatedExecutor
from repro.infrastructure import make_hpc_cluster
from repro.metrics import TraceCollector, utilization
from repro.workloads import NmmbConfig, build_nmmb_workflow


def run(days, sequential_init):
    config = NmmbConfig(
        days=days,
        init_scripts=12,
        sequential_init=sequential_init,
        mpi_nodes=4,
    )
    builder = build_nmmb_workflow(config)
    platform = make_hpc_cluster(6)
    report = SimulatedExecutor(
        builder.graph, platform, initial_data=builder.initial_data
    ).run()
    return builder.graph, report, platform


def main():
    print("NMMB-Monarch forecast: sequential-init driver vs PyCOMPSs port")
    print(f"{'days':>5} {'sequential':>12} {'pycompss':>12} {'speedup':>8}")
    for days in (1, 2, 4, 8):
        _, seq_report, _ = run(days, sequential_init=True)
        _, par_report, _ = run(days, sequential_init=False)
        speedup = seq_report.makespan / par_report.makespan
        print(
            f"{days:>5} {seq_report.makespan / 3600:>11.2f}h "
            f"{par_report.makespan / 3600:>11.2f}h {speedup:>7.2f}x"
        )

    print("\nDetailed 4-day run (PyCOMPSs port):")
    graph, report, platform = run(4, sequential_init=False)
    collector = TraceCollector(graph)
    summary = collector.summary()
    print(f"  tasks executed   : {int(summary['tasks'])}")
    print(f"  makespan         : {report.makespan / 3600:.2f}h")
    print(f"  data moved       : {report.bytes_transferred / 1e9:.1f} GB")
    print(f"  energy           : {report.energy_joules / 3.6e6:.1f} kWh")
    print(f"  core utilization : {utilization(graph, platform.total_cores):.1%}")
    print("  (MPI simulation steps co-allocate 4 x 48-core nodes each)")


if __name__ == "__main__":
    main()
