"""dislib-style distributed machine learning (paper §VI-C).

Run:  python examples/dislib_clustering.py

Clusters a synthetic sensor dataset with the distributed KMeans and fits a
distributed linear model — both estimators decompose into task graphs that
the runtime executes in parallel, exactly like BSC's dislib on PyCOMPSs.
"""

import time

import numpy as np

from repro import Runtime
from repro.dislib import KMeans, LinearRegression, StandardScaler, array


def make_blobs(n_per_cluster=2000, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [6.0, 6.0], [0.0, 6.0], [6.0, 0.0]])
    blobs = [
        rng.normal(loc=center, scale=0.6, size=(n_per_cluster, 2))
        for center in centers
    ]
    return np.vstack(blobs), centers


def clustering_demo():
    print("== Distributed KMeans")
    data, true_centers = make_blobs()
    ds = array(data, block_shape=(1000, 2))
    with Runtime(workers=8):
        started = time.perf_counter()
        model = KMeans(n_clusters=4, seed=3).fit(ds)
        elapsed = time.perf_counter() - started
        labels = model.predict(ds)
    found = np.sort(model.centers_.round(1), axis=0)
    expected = np.sort(true_centers, axis=0)
    print(f"   samples            : {len(data)} in {ds.n_block_rows} blocks")
    print(f"   iterations         : {model.n_iter_} ({elapsed:.2f}s)")
    print(f"   inertia            : {model.inertia_:.1f}")
    print(f"   centers recovered  : {np.allclose(found, expected, atol=0.5)}")
    print(f"   cluster sizes      : {np.bincount(labels).tolist()}")
    print()


def regression_demo():
    print("== Distributed LinearRegression (with StandardScaler)")
    rng = np.random.default_rng(1)
    x = rng.normal(size=(8000, 5)) * np.array([1.0, 10.0, 0.1, 5.0, 2.0])
    true_coef = np.array([[1.5], [-2.0], [0.7], [3.0], [-1.2]])
    y = (x / x.std(axis=0)) @ true_coef + 4.0 + 0.01 * rng.normal(size=(8000, 1))

    dx = array(x, block_shape=(1000, 5))
    dy = array(y, block_shape=(1000, 1))
    with Runtime(workers=8):
        scaler = StandardScaler()
        dx_scaled = scaler.fit_transform(dx)
        model = LinearRegression().fit(dx_scaled, dy)
        score = model.score(dx_scaled, dy)
    print(f"   recovered coefficients : {model.coef_.ravel().round(2).tolist()}")
    print(f"   intercept              : {float(model.intercept_):.2f}")
    print(f"   R^2                    : {score:.4f}")


if __name__ == "__main__":
    clustering_demo()
    regression_demo()
